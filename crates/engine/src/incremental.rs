//! Incremental maintenance of a materialised fixpoint.
//!
//! **Insertions** exploit monotonicity (§X uses it explicitly: "adding more
//! atoms to the input does not remove any atom from the output"): the new
//! facts seed a semi-naive delta and only their consequences are computed.
//!
//! **Deletions** are non-monotone and use DRed (delete-and-rederive,
//! Gupta–Mumick–Subrahmanian 1993): first *overdelete* everything with a
//! derivation through a deleted atom (a delta-driven sweep), then
//! *rederive* overdeleted atoms that still have alternative support from
//! the surviving database. To keep base facts and derived atoms apart, the
//! materialisation remembers the base (`base`): an overdeleted atom that is
//! still in the base is always rederived.

use crate::plan::{instantiate_head, join_body, IndexSet, RulePlan};
use crate::stats::Stats;
use datalog_ast::{Database, GroundAtom, Program};
use std::sync::Arc;

/// A materialised fixpoint that can absorb insertions and deletions
/// incrementally.
///
/// ```
/// use datalog_ast::{fact, parse_database, parse_program};
/// use datalog_engine::Materialized;
///
/// let tc = parse_program(
///     "g(X, Z) :- a(X, Z). g(X, Z) :- g(X, Y), g(Y, Z).",
/// ).unwrap();
/// let mut m = Materialized::new(tc, &parse_database("a(1, 2).").unwrap());
///
/// m.insert([fact("a", [2, 3])]);
/// assert!(m.database().contains(&fact("g", [1, 3])));
///
/// m.remove([fact("a", [1, 2])]);
/// assert!(!m.database().contains(&fact("g", [1, 3])));
/// assert!(m.database().contains(&fact("g", [2, 3])));
/// ```
#[derive(Clone, Debug)]
pub struct Materialized {
    program: Program,
    /// The asserted base facts (EDB and any seeded IDB atoms).
    base: Database,
    /// The saturated database (base ∪ derived).
    db: Database,
    /// Cached shareable copy of `db`, invalidated by every mutation, so
    /// repeated [`Materialized::snapshot`] calls between write batches are
    /// free (one clone per batch, not per reader).
    snapshot: Option<Arc<Database>>,
}

impl Materialized {
    /// Saturate `input` under `program` (semi-naive) and keep the result
    /// ready for incremental updates. Positive programs only.
    pub fn new(program: Program, input: &Database) -> Materialized {
        assert!(
            program.is_positive(),
            "incremental maintenance requires a positive program"
        );
        let db = crate::seminaive::evaluate(&program, input);
        Materialized {
            program,
            base: input.clone(),
            db,
            snapshot: None,
        }
    }

    /// The current fixpoint.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// A shareable, immutable snapshot of the current fixpoint.
    ///
    /// The returned [`Arc`] stays valid (and unchanged) across later
    /// [`Materialized::insert`]/[`Materialized::remove`] calls — readers can
    /// keep querying it while a writer mutates the materialisation. The
    /// snapshot is cached internally, so calling this repeatedly between
    /// write batches clones the database at most once per batch.
    pub fn snapshot(&mut self) -> Arc<Database> {
        self.snapshot
            .get_or_insert_with(|| Arc::new(self.db.clone()))
            .clone()
    }

    /// The asserted base facts.
    pub fn base(&self) -> &Database {
        &self.base
    }

    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Insert facts and propagate their consequences. Returns the number of
    /// atoms added (inserted facts that were new, plus derived atoms).
    ///
    /// Cost is proportional to the consequences of the *delta*, not to the
    /// size of the existing database — the whole point of the method.
    pub fn insert(&mut self, facts: impl IntoIterator<Item = GroundAtom>) -> u64 {
        self.insert_with_stats(facts).0
    }

    /// [`Materialized::insert`], also returning evaluation statistics.
    pub fn insert_with_stats(
        &mut self,
        facts: impl IntoIterator<Item = GroundAtom>,
    ) -> (u64, Stats) {
        let plans: Vec<RulePlan> = self.program.rules.iter().map(RulePlan::compile).collect();
        let mut stats = Stats::default();
        let mut added: u64 = 0;
        self.snapshot = None;

        // Seed delta with the genuinely new facts.
        let mut delta = Database::new();
        for f in facts {
            self.base.insert(f.clone());
            if !self.db.contains(&f) {
                self.db.insert(f.clone());
                delta.insert(f);
                added += 1;
            }
        }

        // Delta-driven rounds: any rule whose body mentions a predicate with
        // delta tuples (EDB or IDB — inserted facts may be either) can fire.
        while !delta.is_empty() {
            stats.iterations += 1;
            let mut derived = Vec::new();
            {
                let mut idx = IndexSet::new(&self.db);
                for plan in &plans {
                    let delta_positions: Vec<usize> = plan
                        .body
                        .iter()
                        .enumerate()
                        .filter(|(_, a)| !a.negated && delta.relation_len(a.pred) > 0)
                        .map(|(i, _)| i)
                        .collect();
                    for &pos in &delta_positions {
                        let order = plan.greedy_order(&self.db);
                        join_body(plan, &order, &mut idx, Some((pos, &delta)), |assignment| {
                            stats.matches += 1;
                            derived.push(instantiate_head(plan, assignment));
                        });
                    }
                }
                stats.probes += idx.probes;
            }
            let mut next_delta = Database::new();
            for atom in derived {
                if !self.db.contains(&atom) {
                    self.db.insert(atom.clone());
                    next_delta.insert(atom);
                    stats.derivations += 1;
                    added += 1;
                }
            }
            delta = next_delta;
        }
        (added, stats)
    }
}

impl Materialized {
    /// Delete base facts and propagate: DRed overdeletion followed by
    /// rederivation. Returns the net number of atoms removed from the
    /// fixpoint.
    pub fn remove(&mut self, facts: impl IntoIterator<Item = GroundAtom>) -> u64 {
        self.remove_with_stats(facts).0
    }

    /// [`Materialized::remove`], also returning work counters (probes and
    /// matches cover both the overdeletion sweep and the rederivation).
    pub fn remove_with_stats(
        &mut self,
        facts: impl IntoIterator<Item = GroundAtom>,
    ) -> (u64, Stats) {
        let plans: Vec<RulePlan> = self.program.rules.iter().map(RulePlan::compile).collect();
        let mut stats = Stats::default();
        self.snapshot = None;

        // Phase 1 — overdelete. `overdeleted` accumulates every atom with
        // some derivation (over the OLD fixpoint) passing through a deleted
        // or overdeleted atom.
        let mut delta = Database::new();
        for f in facts {
            if self.base.remove(&f) && self.db.contains(&f) {
                delta.insert(f);
            }
        }
        let mut overdeleted = delta.clone();
        // The sweep runs against the old fixpoint snapshot.
        let old_db = self.db.clone();
        while !delta.is_empty() {
            stats.iterations += 1;
            let mut hit = Vec::new();
            {
                let mut idx = IndexSet::new(&old_db);
                for plan in &plans {
                    let delta_positions: Vec<usize> = plan
                        .body
                        .iter()
                        .enumerate()
                        .filter(|(_, a)| !a.negated && delta.relation_len(a.pred) > 0)
                        .map(|(i, _)| i)
                        .collect();
                    for &pos in &delta_positions {
                        let order = plan.greedy_order(&old_db);
                        join_body(plan, &order, &mut idx, Some((pos, &delta)), |assignment| {
                            stats.matches += 1;
                            hit.push(instantiate_head(plan, assignment));
                        });
                    }
                }
                stats.probes += idx.probes;
            }
            let mut next_delta = Database::new();
            for atom in hit {
                if !overdeleted.contains(&atom) {
                    overdeleted.insert(atom.clone());
                    next_delta.insert(atom);
                }
            }
            delta = next_delta;
        }

        // Remove the overdeleted region from the fixpoint.
        for atom in overdeleted.iter() {
            self.db.remove(&atom);
        }

        // Phase 2 — rederive. Base facts that were overdeleted (but not
        // deleted) come straight back; derived atoms come back if some rule
        // instantiation over the surviving database produces them. Iterate
        // to fixpoint (restorations can enable further restorations).
        let mut pending: Vec<GroundAtom> = overdeleted.iter().collect();
        loop {
            let mut restored_any = false;
            let mut still_pending = Vec::new();
            for atom in pending {
                let back = self.base.contains(&atom) || self.rederivable(&plans, &atom, &mut stats);
                if back {
                    self.db.insert(atom);
                    restored_any = true;
                } else {
                    still_pending.push(atom);
                }
            }
            pending = still_pending;
            if !restored_any || pending.is_empty() {
                break;
            }
        }

        let removed = old_db.len() - self.db.len();
        (removed as u64, stats)
    }

    /// Does some rule instantiation over the current database derive `atom`?
    fn rederivable(&self, plans: &[RulePlan], atom: &GroundAtom, stats: &mut Stats) -> bool {
        for (plan, rule) in plans.iter().zip(self.program.rules.iter()) {
            if plan.head.pred != atom.pred {
                continue;
            }
            let Some(head_subst) = datalog_ast::match_atom(&rule.head, atom) else {
                continue;
            };
            if body_satisfiable(rule, &head_subst, &self.db, stats) {
                return true;
            }
        }
        false
    }
}

/// Backtracking satisfiability of a rule body under a partial substitution.
fn body_satisfiable(
    rule: &datalog_ast::Rule,
    subst: &datalog_ast::Subst,
    db: &Database,
    stats: &mut Stats,
) -> bool {
    fn rec(
        atoms: &[&datalog_ast::Atom],
        subst: &datalog_ast::Subst,
        db: &Database,
        stats: &mut Stats,
    ) -> bool {
        let Some((first, rest)) = atoms.split_first() else {
            return true;
        };
        let pattern = subst.apply_atom(first);
        for tuple in db.relation(pattern.pred) {
            stats.probes += 1;
            let g = GroundAtom {
                pred: pattern.pred,
                tuple: tuple.clone(),
            };
            let mut s = subst.clone();
            if datalog_ast::match_atom_into(&pattern, &g, &mut s) && rec(rest, &s, db, stats) {
                return true;
            }
        }
        false
    }
    let body: Vec<&datalog_ast::Atom> = rule.positive_body().collect();
    rec(&body, subst, db, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::{fact, parse_database, parse_program, Pred};

    fn tc() -> Program {
        parse_program("g(X, Z) :- a(X, Z). g(X, Z) :- g(X, Y), g(Y, Z).").unwrap()
    }

    #[test]
    fn incremental_matches_from_scratch() {
        let edb = parse_database("a(1,2). a(2,3).").unwrap();
        let mut m = Materialized::new(tc(), &edb);
        m.insert([fact("a", [3, 4]), fact("a", [4, 5])]);

        let full_edb = parse_database("a(1,2). a(2,3). a(3,4). a(4,5).").unwrap();
        let scratch = crate::seminaive::evaluate(&tc(), &full_edb);
        assert_eq!(m.database(), &scratch);
    }

    #[test]
    fn duplicate_inserts_are_noops() {
        let edb = parse_database("a(1,2).").unwrap();
        let mut m = Materialized::new(tc(), &edb);
        let added = m.insert([fact("a", [1, 2]), fact("g", [1, 2])]);
        assert_eq!(added, 0);
    }

    #[test]
    fn inserting_idb_facts_propagates() {
        // Uniform semantics: a seeded g-atom composes with existing ones.
        let edb = parse_database("a(1,2).").unwrap();
        let mut m = Materialized::new(tc(), &edb);
        let added = m.insert([fact("g", [2, 7])]);
        assert!(added >= 2); // g(2,7) itself plus g(1,7)
        assert!(m.database().contains(&fact("g", [1, 7])));
    }

    #[test]
    fn bridge_edge_connects_components() {
        // Two chains; the inserted bridge must produce all cross pairs.
        let edb = parse_database("a(1,2). a(2,3). a(11,12). a(12,13).").unwrap();
        let mut m = Materialized::new(tc(), &edb);
        let before = m.database().relation_len(Pred::new("g"));
        m.insert([fact("a", [3, 11])]);
        let after = m.database().relation_len(Pred::new("g"));
        assert!(after > before + 1);
        assert!(m.database().contains(&fact("g", [1, 13])));

        let full = parse_database("a(1,2). a(2,3). a(11,12). a(12,13). a(3,11).").unwrap();
        assert_eq!(m.database(), &crate::seminaive::evaluate(&tc(), &full));
    }

    #[test]
    fn incremental_work_is_delta_proportional() {
        // Insert one edge at the END of a long chain under the LEFT-linear
        // program: a(n, n+1) only creates suffix→(n+1) pairs via single
        // firings; the delta work must be far below recomputation.
        let p = parse_program("g(X, Z) :- a(X, Z). g(X, Z) :- a(X, Y), g(Y, Z).").unwrap();
        let n = 60i64;
        let mut src = String::new();
        for i in 0..n {
            src.push_str(&format!("a({}, {}).", i, i + 1));
        }
        let edb = parse_database(&src).unwrap();
        let mut m = Materialized::new(p.clone(), &edb);
        let (_, inc_stats) = m.insert_with_stats([fact("a", [n, n + 1])]);

        let mut full_src = src;
        full_src.push_str(&format!("a({}, {}).", n, n + 1));
        let full_edb = parse_database(&full_src).unwrap();
        let (scratch, full_stats) = crate::seminaive::evaluate_with_stats(&p, &full_edb);
        assert_eq!(m.database(), &scratch);
        assert!(
            inc_stats.matches * 4 < full_stats.matches,
            "incremental {} vs full {}",
            inc_stats.matches,
            full_stats.matches
        );
    }

    #[test]
    fn snapshots_are_immutable_and_cached() {
        let edb = parse_database("a(1,2).").unwrap();
        let mut m = Materialized::new(tc(), &edb);
        let s1 = m.snapshot();
        let s1_again = m.snapshot();
        assert!(Arc::ptr_eq(&s1, &s1_again), "cached between batches");

        m.insert([fact("a", [2, 3])]);
        // The old snapshot is frozen; a new one sees the update.
        assert!(!s1.contains(&fact("g", [1, 3])));
        let s2 = m.snapshot();
        assert!(s2.contains(&fact("g", [1, 3])));
        assert!(!Arc::ptr_eq(&s1, &s2));

        m.remove([fact("a", [1, 2])]);
        assert!(s2.contains(&fact("g", [1, 2])), "frozen across removes too");
        assert!(!m.snapshot().contains(&fact("g", [1, 2])));
    }

    #[test]
    fn repeated_inserts_stay_consistent() {
        let mut m = Materialized::new(tc(), &Database::new());
        for i in 0..10i64 {
            m.insert([fact("a", [i, i + 1])]);
        }
        let full: String = (0..10).map(|i| format!("a({}, {}).", i, i + 1)).collect();
        let scratch = crate::seminaive::evaluate(&tc(), &parse_database(&full).unwrap());
        assert_eq!(m.database(), &scratch);
    }
}

#[cfg(test)]
mod deletion_tests {
    use super::*;
    use datalog_ast::{fact, parse_database, parse_program, Program};

    fn tc() -> Program {
        parse_program("g(X, Z) :- a(X, Z). g(X, Z) :- g(X, Y), g(Y, Z).").unwrap()
    }

    fn scratch(p: &Program, base: &Database) -> Database {
        crate::seminaive::evaluate(p, base)
    }

    #[test]
    fn remove_edge_from_chain() {
        let base = parse_database("a(1,2). a(2,3). a(3,4).").unwrap();
        let mut m = Materialized::new(tc(), &base);
        let removed = m.remove([fact("a", [2, 3])]);
        assert!(removed > 1, "edge plus dependent closure atoms");
        let mut expected_base = base.clone();
        expected_base.remove(&fact("a", [2, 3]));
        assert_eq!(m.database(), &scratch(&tc(), &expected_base));
        assert!(!m.database().contains(&fact("g", [1, 4])));
        assert!(m.database().contains(&fact("g", [3, 4])));
    }

    #[test]
    fn rederivation_via_alternative_path() {
        // Two parallel paths 1→2; deleting one keeps g(1,2) derivable.
        let base = parse_database("a(1,2). a(1,9). a(9,2). a(2,3).").unwrap();
        let mut m = Materialized::new(tc(), &base);
        m.remove([fact("a", [1, 2])]);
        let mut eb = base.clone();
        eb.remove(&fact("a", [1, 2]));
        assert_eq!(m.database(), &scratch(&tc(), &eb));
        // g(1,2) survives through 1→9→2.
        assert!(m.database().contains(&fact("g", [1, 2])));
        assert!(m.database().contains(&fact("g", [1, 3])));
    }

    #[test]
    fn remove_nonexistent_is_noop() {
        let base = parse_database("a(1,2).").unwrap();
        let mut m = Materialized::new(tc(), &base);
        let before = m.database().clone();
        assert_eq!(m.remove([fact("a", [7, 8])]), 0);
        // Removing a derived (non-base) atom is also a no-op.
        assert_eq!(m.remove([fact("g", [1, 2])]), 0);
        assert_eq!(m.database(), &before);
    }

    #[test]
    fn remove_then_insert_round_trips() {
        let base = parse_database("a(1,2). a(2,3). a(3,4). a(4,5).").unwrap();
        let mut m = Materialized::new(tc(), &base);
        let original = m.database().clone();
        m.remove([fact("a", [3, 4])]);
        m.insert([fact("a", [3, 4])]);
        assert_eq!(m.database(), &original);
    }

    #[test]
    fn seeded_idb_fact_can_be_removed() {
        let base = parse_database("a(1,2). g(2, 9).").unwrap();
        let mut m = Materialized::new(tc(), &base);
        assert!(m.database().contains(&fact("g", [1, 9])));
        m.remove([fact("g", [2, 9])]);
        let eb = parse_database("a(1,2).").unwrap();
        assert_eq!(m.database(), &scratch(&tc(), &eb));
        assert!(!m.database().contains(&fact("g", [1, 9])));
    }

    #[test]
    fn random_deletion_stream_matches_scratch() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let p = parse_program("g(X, Z) :- a(X, Z). g(X, Z) :- a(X, Y), g(Y, Z).").unwrap();
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut base = Database::new();
            for _ in 0..25 {
                base.insert(fact("a", [rng.gen_range(0..8), rng.gen_range(0..8)]));
            }
            let mut m = Materialized::new(p.clone(), &base);
            // Interleave deletions and insertions.
            for step in 0..12 {
                let x = rng.gen_range(0..8);
                let y = rng.gen_range(0..8);
                let f = fact("a", [x, y]);
                if step % 3 == 0 {
                    base.insert(f.clone());
                    m.insert([f]);
                } else {
                    base.remove(&f);
                    m.remove([f]);
                }
                assert_eq!(
                    m.database(),
                    &crate::seminaive::evaluate(&p, &base),
                    "seed {seed} step {step}"
                );
            }
        }
    }

    #[test]
    fn deletion_work_is_delta_proportional_on_far_edge() {
        // Delete the LAST edge of a long chain (left-linear program):
        // overdeletion touches only pairs ending at the tail.
        let p = parse_program("g(X, Z) :- a(X, Z). g(X, Z) :- a(X, Y), g(Y, Z).").unwrap();
        let n = 60i64;
        let mut src = String::new();
        for i in 0..n {
            src.push_str(&format!("a({}, {}).", i, i + 1));
        }
        let base = parse_database(&src).unwrap();
        let mut m = Materialized::new(p.clone(), &base);
        let (_, del_stats) = m.remove_with_stats([fact("a", [n - 1, n])]);

        let mut eb = base.clone();
        eb.remove(&fact("a", [n - 1, n]));
        let (scratch_db, scratch_stats) = crate::seminaive::evaluate_with_stats(&p, &eb);
        assert_eq!(m.database(), &scratch_db);
        assert!(
            del_stats.matches < scratch_stats.matches,
            "incremental deletion {} vs recompute {}",
            del_stats.matches,
            scratch_stats.matches
        );
    }
}
