//! Incremental maintenance of a materialised fixpoint.
//!
//! **Insertions** exploit monotonicity (§X uses it explicitly: "adding more
//! atoms to the input does not remove any atom from the output"): the new
//! facts seed a semi-naive delta and only their consequences are computed.
//!
//! **Deletions** are non-monotone and use DRed (delete-and-rederive,
//! Gupta–Mumick–Subrahmanian 1993): first *overdelete* everything with a
//! derivation through a deleted atom (a delta-driven sweep), then
//! *rederive* overdeleted atoms that still have alternative support from
//! the surviving database. To keep base facts and derived atoms apart, the
//! materialisation remembers the base (`base`): an overdeleted atom that is
//! still in the base is always rederived.
//!
//! The materialisation lives on a persistent [`EvalContext`], so its rule
//! plans are compiled once at construction and its hash indexes survive
//! *across update batches*: an insertion batch appends its consequences
//! into the live indexes, and only a deletion invalidates them (they
//! re-fill lazily). The seed implementation recompiled every plan and
//! rebuilt every index on every `insert`/`remove` call.

use crate::context::{EvalContext, EvalOptions};
use crate::stats::Stats;
use datalog_ast::{Database, GroundAtom, Program};
use std::sync::Arc;

/// A materialised fixpoint that can absorb insertions and deletions
/// incrementally.
///
/// ```
/// use datalog_ast::{fact, parse_database, parse_program};
/// use datalog_engine::Materialized;
///
/// let tc = parse_program(
///     "g(X, Z) :- a(X, Z). g(X, Z) :- g(X, Y), g(Y, Z).",
/// ).unwrap();
/// let mut m = Materialized::new(tc, &parse_database("a(1, 2).").unwrap());
///
/// m.insert([fact("a", [2, 3])]);
/// assert!(m.database().contains(&fact("g", [1, 3])));
///
/// m.remove([fact("a", [1, 2])]);
/// assert!(!m.database().contains(&fact("g", [1, 3])));
/// assert!(m.database().contains(&fact("g", [2, 3])));
/// ```
pub struct Materialized {
    program: Program,
    /// The asserted base facts (EDB and any seeded IDB atoms).
    base: Database,
    /// The persistent evaluation context: compiled plans, the saturated
    /// database (base ∪ derived), and live indexes over it.
    cx: EvalContext,
}

impl Clone for Materialized {
    fn clone(&self) -> Materialized {
        Materialized {
            program: self.program.clone(),
            base: self.base.clone(),
            cx: self.cx.fork(),
        }
    }
}

impl std::fmt::Debug for Materialized {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Materialized")
            .field("rules", &self.program.rules.len())
            .field("base_atoms", &self.base.len())
            .field("db_atoms", &self.cx.database().len())
            .finish()
    }
}

impl Materialized {
    /// Saturate `input` under `program` (semi-naive) and keep the result
    /// ready for incremental updates. Positive programs only.
    pub fn new(program: Program, input: &Database) -> Materialized {
        Materialized::with_options(program, input, EvalOptions::sequential())
    }

    /// [`Materialized::new`] with explicit [`EvalOptions`]: updates are
    /// propagated with the context's worker-thread knob.
    pub fn with_options(program: Program, input: &Database, opts: EvalOptions) -> Materialized {
        assert!(
            program.is_positive(),
            "incremental maintenance requires a positive program"
        );
        let mut cx = EvalContext::new(&program, input.clone(), opts);
        let rules = all_rules(&program);
        let mut delta = cx.full_round(&rules);
        while !delta.is_empty() {
            delta = cx.delta_round(&rules, &delta, &|_| true);
        }
        Materialized {
            program,
            base: input.clone(),
            cx,
        }
    }

    /// The current fixpoint.
    pub fn database(&self) -> &Database {
        self.cx.database()
    }

    /// A shareable, immutable snapshot of the current fixpoint.
    ///
    /// The returned [`Arc`] stays valid (and unchanged) across later
    /// [`Materialized::insert`]/[`Materialized::remove`] calls — readers can
    /// keep querying it while a writer mutates the materialisation. The
    /// context database is copy-on-write, so handing out a snapshot costs
    /// one clone per *write batch* (at the first post-snapshot mutation),
    /// not one per reader.
    pub fn snapshot(&mut self) -> Arc<Database> {
        self.cx.database_arc()
    }

    /// The asserted base facts.
    pub fn base(&self) -> &Database {
        &self.base
    }

    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Cumulative work counters over the materialisation's whole life
    /// (initial saturation plus every update batch).
    pub fn stats(&self) -> Stats {
        self.cx.stats()
    }

    /// Insert facts and propagate their consequences. Returns the number of
    /// atoms added (inserted facts that were new, plus derived atoms).
    ///
    /// Cost is proportional to the consequences of the *delta*, not to the
    /// size of the existing database — the whole point of the method.
    pub fn insert(&mut self, facts: impl IntoIterator<Item = GroundAtom>) -> u64 {
        self.insert_with_stats(facts).0
    }

    /// [`Materialized::insert`], also returning this batch's evaluation
    /// statistics.
    pub fn insert_with_stats(
        &mut self,
        facts: impl IntoIterator<Item = GroundAtom>,
    ) -> (u64, Stats) {
        let before = self.cx.stats();
        let mut added: u64 = 0;

        // Seed delta with the genuinely new facts; the live indexes absorb
        // them immediately.
        let mut delta = Database::new();
        for f in facts {
            self.base.insert(f.clone());
            if self.cx.add_fact(f.clone()) {
                delta.insert(f);
                added += 1;
            }
        }

        // Delta-driven rounds: any rule whose body mentions a predicate with
        // delta tuples (EDB or IDB — inserted facts may be either) can fire.
        let rules = all_rules(&self.program);
        while !delta.is_empty() {
            delta = self.cx.delta_round(&rules, &delta, &|_| true);
            added += delta.len() as u64;
        }
        (added, self.cx.stats() - before)
    }
}

impl Materialized {
    /// Delete base facts and propagate: DRed overdeletion followed by
    /// rederivation. Returns the net number of atoms removed from the
    /// fixpoint.
    pub fn remove(&mut self, facts: impl IntoIterator<Item = GroundAtom>) -> u64 {
        self.remove_with_stats(facts).0
    }

    /// [`Materialized::remove`], also returning this batch's work counters
    /// (probes and matches cover both the overdeletion sweep and the
    /// rederivation).
    pub fn remove_with_stats(
        &mut self,
        facts: impl IntoIterator<Item = GroundAtom>,
    ) -> (u64, Stats) {
        let before = self.cx.stats();
        let rules = all_rules(&self.program);

        // Phase 1 — overdelete. `overdeleted` accumulates every atom with
        // some derivation (over the OLD fixpoint) passing through a deleted
        // or overdeleted atom. The sweep never commits, so the context
        // database *is* the old fixpoint throughout — no snapshot clone.
        let mut delta = Database::new();
        for f in facts {
            if self.base.remove(&f) && self.cx.database().contains(&f) {
                delta.insert(f);
            }
        }
        let mut overdeleted = delta.clone();
        let old_len = self.cx.database().len();
        while !delta.is_empty() {
            let hit = self.cx.sweep_round(&rules, &delta, &|_| true);
            let mut next_delta = Database::new();
            for atom in hit {
                if !overdeleted.contains(&atom) {
                    overdeleted.insert(atom.clone());
                    next_delta.insert(atom);
                }
            }
            delta = next_delta;
        }

        // Remove the overdeleted region from the fixpoint (this is the one
        // operation that invalidates the live indexes).
        self.cx.remove_atoms(&overdeleted);

        // Phase 2 — rederive. Base facts that were overdeleted (but not
        // deleted) come straight back; derived atoms come back if some rule
        // instantiation over the surviving database produces them. Iterate
        // to fixpoint (restorations can enable further restorations).
        let mut rstats = Stats::default();
        let mut pending: Vec<GroundAtom> = overdeleted.iter().collect();
        loop {
            let mut restored_any = false;
            let mut still_pending = Vec::new();
            for atom in pending {
                let back = self.base.contains(&atom) || self.rederivable(&atom, &mut rstats);
                if back {
                    self.cx.add_fact(atom);
                    restored_any = true;
                } else {
                    still_pending.push(atom);
                }
            }
            pending = still_pending;
            if !restored_any || pending.is_empty() {
                break;
            }
        }
        self.cx.record(rstats);

        let removed = old_len - self.cx.database().len();
        (removed as u64, self.cx.stats() - before)
    }

    /// Does some rule instantiation over the current database derive `atom`?
    fn rederivable(&self, atom: &GroundAtom, stats: &mut Stats) -> bool {
        for rule in &self.program.rules {
            if rule.head.pred != atom.pred {
                continue;
            }
            let Some(head_subst) = datalog_ast::match_atom(&rule.head, atom) else {
                continue;
            };
            if body_satisfiable(rule, &head_subst, self.cx.database(), stats) {
                return true;
            }
        }
        false
    }
}

fn all_rules(program: &Program) -> Vec<usize> {
    (0..program.rules.len()).collect()
}

/// Backtracking satisfiability of a rule body under a partial substitution
/// (shared with the sharded evaluator's rederivation phase).
pub(crate) fn body_satisfiable(
    rule: &datalog_ast::Rule,
    subst: &datalog_ast::Subst,
    db: &Database,
    stats: &mut Stats,
) -> bool {
    fn rec(
        atoms: &[&datalog_ast::Atom],
        subst: &datalog_ast::Subst,
        db: &Database,
        stats: &mut Stats,
    ) -> bool {
        let Some((first, rest)) = atoms.split_first() else {
            return true;
        };
        let pattern = subst.apply_atom(first);
        for tuple in db.relation(pattern.pred) {
            stats.probes += 1;
            let g = GroundAtom {
                pred: pattern.pred,
                tuple: tuple.into(),
            };
            let mut s = subst.clone();
            if datalog_ast::match_atom_into(&pattern, &g, &mut s) && rec(rest, &s, db, stats) {
                return true;
            }
        }
        false
    }
    let body: Vec<&datalog_ast::Atom> = rule.positive_body().collect();
    rec(&body, subst, db, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::{fact, parse_database, parse_program, Pred};

    fn tc() -> Program {
        parse_program("g(X, Z) :- a(X, Z). g(X, Z) :- g(X, Y), g(Y, Z).").unwrap()
    }

    #[test]
    fn incremental_matches_from_scratch() {
        let edb = parse_database("a(1,2). a(2,3).").unwrap();
        let mut m = Materialized::new(tc(), &edb);
        m.insert([fact("a", [3, 4]), fact("a", [4, 5])]);

        let full_edb = parse_database("a(1,2). a(2,3). a(3,4). a(4,5).").unwrap();
        let scratch = crate::seminaive::evaluate(&tc(), &full_edb);
        assert_eq!(m.database(), &scratch);
    }

    #[test]
    fn duplicate_inserts_are_noops() {
        let edb = parse_database("a(1,2).").unwrap();
        let mut m = Materialized::new(tc(), &edb);
        let added = m.insert([fact("a", [1, 2]), fact("g", [1, 2])]);
        assert_eq!(added, 0);
    }

    #[test]
    fn inserting_idb_facts_propagates() {
        // Uniform semantics: a seeded g-atom composes with existing ones.
        let edb = parse_database("a(1,2).").unwrap();
        let mut m = Materialized::new(tc(), &edb);
        let added = m.insert([fact("g", [2, 7])]);
        assert!(added >= 2); // g(2,7) itself plus g(1,7)
        assert!(m.database().contains(&fact("g", [1, 7])));
    }

    #[test]
    fn bridge_edge_connects_components() {
        // Two chains; the inserted bridge must produce all cross pairs.
        let edb = parse_database("a(1,2). a(2,3). a(11,12). a(12,13).").unwrap();
        let mut m = Materialized::new(tc(), &edb);
        let before = m.database().relation_len(Pred::new("g"));
        m.insert([fact("a", [3, 11])]);
        let after = m.database().relation_len(Pred::new("g"));
        assert!(after > before + 1);
        assert!(m.database().contains(&fact("g", [1, 13])));

        let full = parse_database("a(1,2). a(2,3). a(11,12). a(12,13). a(3,11).").unwrap();
        assert_eq!(m.database(), &crate::seminaive::evaluate(&tc(), &full));
    }

    #[test]
    fn incremental_work_is_delta_proportional() {
        // Insert one edge at the END of a long chain under the LEFT-linear
        // program: a(n, n+1) only creates suffix→(n+1) pairs via single
        // firings; the delta work must be far below recomputation.
        let p = parse_program("g(X, Z) :- a(X, Z). g(X, Z) :- a(X, Y), g(Y, Z).").unwrap();
        let n = 60i64;
        let mut src = String::new();
        for i in 0..n {
            src.push_str(&format!("a({}, {}).", i, i + 1));
        }
        let edb = parse_database(&src).unwrap();
        let mut m = Materialized::new(p.clone(), &edb);
        let (_, inc_stats) = m.insert_with_stats([fact("a", [n, n + 1])]);

        let mut full_src = src;
        full_src.push_str(&format!("a({}, {}).", n, n + 1));
        let full_edb = parse_database(&full_src).unwrap();
        let (scratch, full_stats) = crate::seminaive::evaluate_with_stats(&p, &full_edb);
        assert_eq!(m.database(), &scratch);
        assert!(
            inc_stats.matches * 4 < full_stats.matches,
            "incremental {} vs full {}",
            inc_stats.matches,
            full_stats.matches
        );
    }

    #[test]
    fn insert_batches_reuse_indexes() {
        let edb = parse_database("a(1,2). a(2,3).").unwrap();
        let mut m = Materialized::new(tc(), &edb);
        let builds_after_init = m.stats().index_builds;
        let (_, s1) = m.insert_with_stats([fact("a", [3, 4])]);
        let (_, s2) = m.insert_with_stats([fact("a", [4, 5])]);
        // Monotone batches never rebuild: they append into the indexes the
        // initial saturation built.
        assert_eq!(s1.index_builds + s2.index_builds, 0);
        assert_eq!(m.stats().index_builds, builds_after_init);
        assert!(s1.index_appends > 0);
    }

    #[test]
    fn snapshots_are_immutable_and_cached() {
        let edb = parse_database("a(1,2).").unwrap();
        let mut m = Materialized::new(tc(), &edb);
        let s1 = m.snapshot();
        let s1_again = m.snapshot();
        assert!(Arc::ptr_eq(&s1, &s1_again), "cached between batches");

        m.insert([fact("a", [2, 3])]);
        // The old snapshot is frozen; a new one sees the update.
        assert!(!s1.contains(&fact("g", [1, 3])));
        let s2 = m.snapshot();
        assert!(s2.contains(&fact("g", [1, 3])));
        assert!(!Arc::ptr_eq(&s1, &s2));

        m.remove([fact("a", [1, 2])]);
        assert!(s2.contains(&fact("g", [1, 2])), "frozen across removes too");
        assert!(!m.snapshot().contains(&fact("g", [1, 2])));
    }

    #[test]
    fn repeated_inserts_stay_consistent() {
        let mut m = Materialized::new(tc(), &Database::new());
        for i in 0..10i64 {
            m.insert([fact("a", [i, i + 1])]);
        }
        let full: String = (0..10).map(|i| format!("a({}, {}).", i, i + 1)).collect();
        let scratch = crate::seminaive::evaluate(&tc(), &parse_database(&full).unwrap());
        assert_eq!(m.database(), &scratch);
    }

    #[test]
    fn parallel_materialization_matches_sequential() {
        let edb = parse_database("a(1,2). a(2,3). a(3,4). a(4,1).").unwrap();
        let mut seq = Materialized::new(tc(), &edb);
        let mut par = Materialized::with_options(tc(), &edb, EvalOptions::with_threads(4));
        assert_eq!(seq.database(), par.database());
        seq.insert([fact("a", [4, 5])]);
        par.insert([fact("a", [4, 5])]);
        assert_eq!(seq.database(), par.database());
        seq.remove([fact("a", [2, 3])]);
        par.remove([fact("a", [2, 3])]);
        assert_eq!(seq.database(), par.database());
    }
}

#[cfg(test)]
mod deletion_tests {
    use super::*;
    use datalog_ast::{fact, parse_database, parse_program, Program};

    fn tc() -> Program {
        parse_program("g(X, Z) :- a(X, Z). g(X, Z) :- g(X, Y), g(Y, Z).").unwrap()
    }

    fn scratch(p: &Program, base: &Database) -> Database {
        crate::seminaive::evaluate(p, base)
    }

    #[test]
    fn remove_edge_from_chain() {
        let base = parse_database("a(1,2). a(2,3). a(3,4).").unwrap();
        let mut m = Materialized::new(tc(), &base);
        let removed = m.remove([fact("a", [2, 3])]);
        assert!(removed > 1, "edge plus dependent closure atoms");
        let mut expected_base = base.clone();
        expected_base.remove(&fact("a", [2, 3]));
        assert_eq!(m.database(), &scratch(&tc(), &expected_base));
        assert!(!m.database().contains(&fact("g", [1, 4])));
        assert!(m.database().contains(&fact("g", [3, 4])));
    }

    #[test]
    fn rederivation_via_alternative_path() {
        // Two parallel paths 1→2; deleting one keeps g(1,2) derivable.
        let base = parse_database("a(1,2). a(1,9). a(9,2). a(2,3).").unwrap();
        let mut m = Materialized::new(tc(), &base);
        m.remove([fact("a", [1, 2])]);
        let mut eb = base.clone();
        eb.remove(&fact("a", [1, 2]));
        assert_eq!(m.database(), &scratch(&tc(), &eb));
        // g(1,2) survives through 1→9→2.
        assert!(m.database().contains(&fact("g", [1, 2])));
        assert!(m.database().contains(&fact("g", [1, 3])));
    }

    #[test]
    fn remove_nonexistent_is_noop() {
        let base = parse_database("a(1,2).").unwrap();
        let mut m = Materialized::new(tc(), &base);
        let before = m.database().clone();
        assert_eq!(m.remove([fact("a", [7, 8])]), 0);
        // Removing a derived (non-base) atom is also a no-op.
        assert_eq!(m.remove([fact("g", [1, 2])]), 0);
        assert_eq!(m.database(), &before);
    }

    #[test]
    fn remove_then_insert_round_trips() {
        let base = parse_database("a(1,2). a(2,3). a(3,4). a(4,5).").unwrap();
        let mut m = Materialized::new(tc(), &base);
        let original = m.database().clone();
        m.remove([fact("a", [3, 4])]);
        m.insert([fact("a", [3, 4])]);
        assert_eq!(m.database(), &original);
    }

    #[test]
    fn seeded_idb_fact_can_be_removed() {
        let base = parse_database("a(1,2). g(2, 9).").unwrap();
        let mut m = Materialized::new(tc(), &base);
        assert!(m.database().contains(&fact("g", [1, 9])));
        m.remove([fact("g", [2, 9])]);
        let eb = parse_database("a(1,2).").unwrap();
        assert_eq!(m.database(), &scratch(&tc(), &eb));
        assert!(!m.database().contains(&fact("g", [1, 9])));
    }

    #[test]
    fn random_deletion_stream_matches_scratch() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let p = parse_program("g(X, Z) :- a(X, Z). g(X, Z) :- a(X, Y), g(Y, Z).").unwrap();
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut base = Database::new();
            for _ in 0..25 {
                base.insert(fact("a", [rng.gen_range(0..8), rng.gen_range(0..8)]));
            }
            let mut m = Materialized::new(p.clone(), &base);
            // Interleave deletions and insertions.
            for step in 0..12 {
                let x = rng.gen_range(0..8);
                let y = rng.gen_range(0..8);
                let f = fact("a", [x, y]);
                if step % 3 == 0 {
                    base.insert(f.clone());
                    m.insert([f]);
                } else {
                    base.remove(&f);
                    m.remove([f]);
                }
                assert_eq!(
                    m.database(),
                    &crate::seminaive::evaluate(&p, &base),
                    "seed {seed} step {step}"
                );
            }
        }
    }

    #[test]
    fn deletion_work_is_delta_proportional_on_far_edge() {
        // Delete the LAST edge of a long chain (left-linear program):
        // overdeletion touches only pairs ending at the tail.
        let p = parse_program("g(X, Z) :- a(X, Z). g(X, Z) :- a(X, Y), g(Y, Z).").unwrap();
        let n = 60i64;
        let mut src = String::new();
        for i in 0..n {
            src.push_str(&format!("a({}, {}).", i, i + 1));
        }
        let base = parse_database(&src).unwrap();
        let mut m = Materialized::new(p.clone(), &base);
        let (_, del_stats) = m.remove_with_stats([fact("a", [n - 1, n])]);

        let mut eb = base.clone();
        eb.remove(&fact("a", [n - 1, n]));
        let (scratch_db, scratch_stats) = crate::seminaive::evaluate_with_stats(&p, &eb);
        assert_eq!(m.database(), &scratch_db);
        assert!(
            del_stats.matches < scratch_stats.matches,
            "incremental deletion {} vs recompute {}",
            del_stats.matches,
            scratch_stats.matches
        );
    }
}
