//! Naive bottom-up evaluation — the paper's computation model, literally.
//!
//! §III: "Computing the output by repeatedly instantiating rules, until no
//! new ground atoms can be generated, is known as bottom-up computation."
//!
//! Each round evaluates every rule against the *entire* current database and
//! inserts the instantiated heads; rounds repeat until a fixpoint. The
//! output `P(d)` *contains the input* `d` (§III), including ground atoms
//! supplied for intentional predicates — this is exactly the semantics that
//! uniform equivalence (§IV) quantifies over, so the chase in
//! `datalog-optimizer` runs on this evaluator's semantics (via the faster
//! semi-naive engine, which computes the same fixpoint).

use crate::plan::{instantiate_head, join_body, IndexSet, RulePlan};
use crate::stats::Stats;
use datalog_ast::{Database, Program};

/// Compute `P(d)`: the minimal model of `P` containing `d` (§IV, Van
/// Emden–Kowalski). The input database may contain atoms for intentional
/// predicates; they are kept (the output contains the input).
///
/// Negation-free programs only; use [`crate::stratified`] for stratified
/// programs. Rules with negated literals cause a panic here — callers are
/// expected to validate with `datalog_ast::validate_positive` first.
pub fn evaluate(program: &Program, input: &Database) -> Database {
    evaluate_with_stats(program, input).0
}

/// [`evaluate`], also returning work counters.
pub fn evaluate_with_stats(program: &Program, input: &Database) -> (Database, Stats) {
    assert!(
        program.is_positive(),
        "naive::evaluate requires a positive program; use stratified::evaluate"
    );
    let plans: Vec<RulePlan> = program.rules.iter().map(RulePlan::compile).collect();
    let mut db = input.clone();
    let mut stats = Stats::default();
    loop {
        stats.iterations += 1;
        let mut new_atoms = Vec::new();
        {
            let mut idx = IndexSet::new(&db);
            for plan in &plans {
                let order = plan.greedy_order(&db);
                join_body(plan, &order, &mut idx, None, |assignment| {
                    stats.matches += 1;
                    new_atoms.push(instantiate_head(plan, assignment));
                });
            }
            stats.probes += idx.probes;
        }
        let mut changed = false;
        for atom in new_atoms {
            if db.insert(atom) {
                stats.derivations += 1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    (db, stats)
}

/// Apply `P` **non-recursively** (§IX): derive only the atoms obtainable by
/// a single rule application to `d` itself. Following the paper's
/// definition, the result `Pⁿ(d)` contains *only the newly derived atoms*,
/// not `d`.
pub fn apply_once(program: &Program, d: &Database) -> Database {
    let plans: Vec<RulePlan> = program.rules.iter().map(RulePlan::compile).collect();
    let mut out = Database::new();
    let mut idx = IndexSet::new(d);
    for plan in &plans {
        let order = plan.greedy_order(d);
        join_body(plan, &order, &mut idx, None, |assignment| {
            out.insert(instantiate_head(plan, assignment));
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::{fact, parse_database, parse_program};

    fn tc_program() -> Program {
        parse_program("g(X, Z) :- a(X, Z). g(X, Z) :- g(X, Y), g(Y, Z).").unwrap()
    }

    #[test]
    fn example2_exact_output() {
        // §III Example 2: EDB {A(1,2), A(1,4), A(4,1)} →
        // DB also contains G(1,2), G(1,4), G(4,1), G(1,1), G(4,4), G(4,2).
        let edb = parse_database("a(1,2). a(1,4). a(4,1).").unwrap();
        let out = evaluate(&tc_program(), &edb);
        let expected = parse_database(
            "a(1,2). a(1,4). a(4,1).
             g(1,2). g(1,4). g(4,1). g(1,1). g(4,4). g(4,2).",
        )
        .unwrap();
        assert_eq!(out, expected);
    }

    #[test]
    fn example3_idb_input() {
        // §III Example 3: input {A(1,2), A(1,4), G(4,1)} gives the same
        // output as Example 2 but with A(4,1) omitted.
        let input = parse_database("a(1,2). a(1,4). g(4,1).").unwrap();
        let out = evaluate(&tc_program(), &input);
        let expected = parse_database(
            "a(1,2). a(1,4).
             g(1,2). g(1,4). g(4,1). g(1,1). g(4,4). g(4,2).",
        )
        .unwrap();
        assert_eq!(out, expected);
    }

    #[test]
    fn output_contains_input() {
        let input = parse_database("a(1,2). g(7,8).").unwrap();
        let out = evaluate(&tc_program(), &input);
        assert!(input.is_subset_of(&out));
    }

    #[test]
    fn empty_program_is_identity() {
        let input = parse_database("a(1,2).").unwrap();
        let out = evaluate(&Program::empty(), &input);
        assert_eq!(out, input);
    }

    #[test]
    fn facts_in_program_are_derived() {
        let p = parse_program("a(1, 2). g(X, Y) :- a(X, Y).").unwrap();
        let out = evaluate(&p, &Database::new());
        assert!(out.contains(&fact("a", [1, 2])));
        assert!(out.contains(&fact("g", [1, 2])));
    }

    #[test]
    fn apply_once_is_nonrecursive() {
        // §IX Example 12: P applied non-recursively to
        // {A(1,2), G(2,3), G(3,4)} yields {G(1,2), G(2,4)} only.
        let d = parse_database("a(1,2). g(2,3). g(3,4).").unwrap();
        let out = apply_once(&tc_program(), &d);
        let expected = parse_database("g(1,2). g(2,4).").unwrap();
        assert_eq!(out, expected);
    }

    #[test]
    fn example12_full_evaluation() {
        // §IX Example 12 also gives P(d) in full.
        let d = parse_database("a(1,2). g(2,3). g(3,4).").unwrap();
        let out = evaluate(&tc_program(), &d);
        let expected =
            parse_database("a(1,2). g(2,3). g(3,4). g(1,2). g(1,3). g(2,4). g(1,4).").unwrap();
        assert_eq!(out, expected);
    }

    #[test]
    fn stats_are_populated() {
        let edb = parse_database("a(1,2). a(2,3). a(3,4).").unwrap();
        let (_, stats) = evaluate_with_stats(&tc_program(), &edb);
        assert!(stats.iterations >= 2);
        assert!(stats.derivations >= 6); // 6 g-atoms in the closure
        assert!(stats.probes > 0);
        assert!(stats.matches >= stats.derivations);
    }

    #[test]
    fn chain_closure_size() {
        // Closure of an n-chain has n(n+1)/2 pairs.
        let mut facts = String::new();
        let n = 12;
        for i in 0..n {
            facts.push_str(&format!("a({}, {}).", i, i + 1));
        }
        let edb = parse_database(&facts).unwrap();
        let out = evaluate(&tc_program(), &edb);
        let expected = (n * (n + 1)) / 2;
        assert_eq!(out.relation_len(datalog_ast::Pred::new("g")), expected);
    }

    #[test]
    #[should_panic(expected = "positive program")]
    fn negation_is_rejected() {
        let p = parse_program("p(X) :- q(X), !r(X).").unwrap();
        evaluate(&p, &Database::new());
    }
}
