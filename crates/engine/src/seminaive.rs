//! Semi-naive bottom-up evaluation.
//!
//! Computes the same fixpoint as [`crate::naive`] but avoids rediscovering
//! old facts: after the first full round, a rule can only produce a *new*
//! head atom if at least one body atom matches a tuple derived in the
//! previous round (the delta). Each rule is therefore evaluated once per
//! delta-position — for every body occurrence of an intentional predicate,
//! with that occurrence restricted to the delta and the remaining atoms
//! ranging over the full database.
//!
//! This variant may enumerate a match twice when two body atoms both hit the
//! delta (the set-semantics insert dedupes), trading a little recomputation
//! for simplicity; it performs the asymptotic semi-naive saving that makes
//! the minimization benchmarks meaningful at realistic EDB sizes.
//!
//! The fixpoint runs on an [`EvalContext`]: hash indexes are built once and
//! maintained incrementally across rounds, each rule's greedy join order is
//! computed once per round, and with [`EvalOptions::threads`] > 1 the
//! per-round work is partitioned across a worker pool. The seed behaviour —
//! rebuild every index on every round — survives as
//! [`evaluate_rebuilding_with_stats`], kept as the measured baseline for the
//! E16 experiment and the differential tests.

use crate::context::{EvalContext, EvalOptions};
use crate::plan::{instantiate_head, join_body, IndexSet, RulePlan};
use crate::stats::Stats;
use datalog_ast::{Database, Pred, Program};
use std::collections::BTreeSet;

/// Compute `P(d)` semi-naively. Same contract as [`crate::naive::evaluate`]:
/// positive programs, output contains input.
pub fn evaluate(program: &Program, input: &Database) -> Database {
    evaluate_with_stats(program, input).0
}

/// [`evaluate`], also returning work counters.
pub fn evaluate_with_stats(program: &Program, input: &Database) -> (Database, Stats) {
    evaluate_with_opts(program, input, EvalOptions::sequential())
}

/// [`evaluate`] with explicit [`EvalOptions`] (worker-thread knob).
pub fn evaluate_with_opts(
    program: &Program,
    input: &Database,
    opts: EvalOptions,
) -> (Database, Stats) {
    assert!(
        program.is_positive(),
        "seminaive::evaluate requires a positive program; use stratified::evaluate"
    );
    let idb: BTreeSet<Pred> = program.intentional();
    let rules: Vec<usize> = (0..program.rules.len()).collect();
    let mut cx = EvalContext::new(program, input.clone(), opts);

    // Round 1: one full pass over the input (covers EDB-only rules, facts,
    // and input-supplied IDB atoms in one go). Subsequent rounds are
    // delta-driven: each rule runs once per body occurrence of an
    // intentional predicate with tuples in the delta.
    let mut delta = cx.full_round(&rules);
    while !delta.is_empty() {
        delta = cx.delta_round(&rules, &delta, &|p| idb.contains(&p));
    }
    let stats = cx.stats();
    (cx.into_database(), stats)
}

/// The seed evaluator: identical delta discipline, but every round rebuilds
/// every index from scratch (`IndexSet::new`) and recomputes each rule's
/// greedy order per delta position. Kept as the baseline that the E16
/// experiment and the parallel differential tests measure against.
pub fn evaluate_rebuilding(program: &Program, input: &Database) -> Database {
    evaluate_rebuilding_with_stats(program, input).0
}

/// [`evaluate_rebuilding`], also returning work counters (with
/// `index_builds` counting the per-round rebuild churn).
pub fn evaluate_rebuilding_with_stats(program: &Program, input: &Database) -> (Database, Stats) {
    assert!(
        program.is_positive(),
        "seminaive::evaluate requires a positive program; use stratified::evaluate"
    );
    let plans: Vec<RulePlan> = program.rules.iter().map(RulePlan::compile).collect();
    let idb: BTreeSet<Pred> = program.intentional();
    let mut stats = Stats::default();

    let mut db = input.clone();
    let mut delta = Database::new();
    {
        stats.iterations += 1;
        let mut idx = IndexSet::new(input);
        let mut derived = Vec::new();
        for plan in &plans {
            let order = plan.greedy_order(input);
            join_body(plan, &order, &mut idx, None, |assignment| {
                stats.matches += 1;
                derived.push(instantiate_head(plan, assignment));
            });
        }
        stats.probes += idx.probes;
        stats.index_builds += idx.builds;
        for atom in derived {
            if !db.contains(&atom) {
                db.insert(atom.clone());
                delta.insert(atom);
                stats.derivations += 1;
            }
        }
    }

    while !delta.is_empty() {
        stats.iterations += 1;
        let mut derived = Vec::new();
        {
            let mut idx = IndexSet::new(&db);
            for plan in &plans {
                let delta_positions: Vec<usize> = plan
                    .body
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| {
                        !a.negated && idb.contains(&a.pred) && delta.relation_len(a.pred) > 0
                    })
                    .map(|(i, _)| i)
                    .collect();
                for &pos in &delta_positions {
                    let order = plan.greedy_order(&db);
                    join_body(plan, &order, &mut idx, Some((pos, &delta)), |assignment| {
                        stats.matches += 1;
                        derived.push(instantiate_head(plan, assignment));
                    });
                }
            }
            stats.probes += idx.probes;
            stats.index_builds += idx.builds;
        }
        let mut next_delta = Database::new();
        for atom in derived {
            if !db.contains(&atom) {
                db.insert(atom.clone());
                next_delta.insert(atom);
                stats.derivations += 1;
            }
        }
        delta = next_delta;
    }
    (db, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use datalog_ast::{parse_database, parse_program};

    fn tc_program() -> Program {
        parse_program("g(X, Z) :- a(X, Z). g(X, Z) :- g(X, Y), g(Y, Z).").unwrap()
    }

    #[test]
    fn agrees_with_naive_on_example2() {
        let edb = parse_database("a(1,2). a(1,4). a(4,1).").unwrap();
        assert_eq!(
            evaluate(&tc_program(), &edb),
            naive::evaluate(&tc_program(), &edb)
        );
    }

    #[test]
    fn agrees_with_naive_with_idb_input() {
        let input = parse_database("a(1,2). a(1,4). g(4,1).").unwrap();
        assert_eq!(
            evaluate(&tc_program(), &input),
            naive::evaluate(&tc_program(), &input)
        );
    }

    #[test]
    fn chain_closure() {
        let mut facts = String::new();
        let n = 20;
        for i in 0..n {
            facts.push_str(&format!("a({}, {}).", i, i + 1));
        }
        let edb = parse_database(&facts).unwrap();
        let out = evaluate(&tc_program(), &edb);
        assert_eq!(out.relation_len(Pred::new("g")), (n * (n + 1)) / 2);
    }

    #[test]
    fn left_linear_tc() {
        let p = parse_program("g(X, Z) :- a(X, Z). g(X, Z) :- a(X, Y), g(Y, Z).").unwrap();
        let edb = parse_database("a(1,2). a(2,3). a(3,1).").unwrap();
        let out = evaluate(&p, &edb);
        // Cycle: closure is all 9 pairs.
        assert_eq!(out.relation_len(Pred::new("g")), 9);
        assert_eq!(out, naive::evaluate(&p, &edb));
    }

    #[test]
    fn multi_idb_mutual_recursion() {
        let p = parse_program(
            "even(X) :- zero(X).
             odd(Y) :- even(X), succ(X, Y).
             even(Y) :- odd(X), succ(X, Y).",
        )
        .unwrap();
        let mut facts = String::from("zero(0).");
        for i in 0..10 {
            facts.push_str(&format!("succ({}, {}).", i, i + 1));
        }
        let edb = parse_database(&facts).unwrap();
        let out = evaluate(&p, &edb);
        assert_eq!(out, naive::evaluate(&p, &edb));
        assert_eq!(out.relation_len(Pred::new("even")), 6); // 0,2,4,6,8,10
        assert_eq!(out.relation_len(Pred::new("odd")), 5); // 1,3,5,7,9
    }

    #[test]
    fn seminaive_does_less_matching_than_naive() {
        let mut facts = String::new();
        for i in 0..30 {
            facts.push_str(&format!("a({}, {}).", i, i + 1));
        }
        let edb = parse_database(&facts).unwrap();
        let (out_n, stats_n) = naive::evaluate_with_stats(&tc_program(), &edb);
        let (out_s, stats_s) = evaluate_with_stats(&tc_program(), &edb);
        assert_eq!(out_n, out_s);
        assert!(
            stats_s.matches < stats_n.matches,
            "semi-naive {} vs naive {}",
            stats_s.matches,
            stats_n.matches
        );
    }

    #[test]
    fn program_facts_reach_fixpoint() {
        let p = parse_program("a(1, 2). a(2, 3). g(X, Z) :- a(X, Z). g(X, Z) :- g(X, Y), g(Y, Z).")
            .unwrap();
        let out = evaluate(&p, &Database::new());
        assert_eq!(out.relation_len(Pred::new("g")), 3);
    }

    #[test]
    fn empty_input_empty_program() {
        assert!(evaluate(&Program::empty(), &Database::new()).is_empty());
    }

    #[test]
    fn rebuilding_baseline_agrees_but_rebuilds_more() {
        let mut facts = String::new();
        for i in 0..30 {
            facts.push_str(&format!("a({}, {}).", i, i + 1));
        }
        let edb = parse_database(&facts).unwrap();
        let (out_i, stats_i) = evaluate_with_stats(&tc_program(), &edb);
        let (out_r, stats_r) = evaluate_rebuilding_with_stats(&tc_program(), &edb);
        assert_eq!(out_i, out_r);
        assert_eq!(stats_i.derivations, stats_r.derivations);
        // Incremental: a handful of builds total. Rebuilding: builds every
        // round (the churn E16 measures).
        assert!(
            stats_i.index_builds < stats_r.index_builds,
            "incremental {} vs rebuilding {}",
            stats_i.index_builds,
            stats_r.index_builds
        );
        assert!(stats_i.index_appends > 0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut facts = String::new();
        for i in 0..25 {
            facts.push_str(&format!("a({}, {}).", i, i + 1));
            facts.push_str(&format!("a({}, {}).", i + 1, i));
        }
        let edb = parse_database(&facts).unwrap();
        let (seq, _) = evaluate_with_stats(&tc_program(), &edb);
        for threads in [2usize, 4] {
            let (par, stats) =
                evaluate_with_opts(&tc_program(), &edb, EvalOptions::with_threads(threads));
            assert_eq!(par, seq);
            assert!(stats.parallel_tasks > 0);
        }
    }
}
