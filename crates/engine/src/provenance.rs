//! Why-provenance: derivation trees for bottom-up evaluation.
//!
//! §III describes evaluation as repeated rule instantiation; this module
//! records *which* instantiations fired, so that any derived atom can be
//! explained by a proof tree grounded in the input database. The optimizer
//! uses the same notion implicitly — Theorem 1's proof manipulates "a
//! sequence of substitutions ϕ1, …, ϕn" — and surfacing it makes
//! containment verdicts auditable: `explain` turns "the frozen head was
//! derived" into the actual derivation.

use crate::plan::{instantiate_head, join_body, IndexSet, RulePlan};
use datalog_ast::{Database, GroundAtom, Program, Subst, Term};
use std::collections::HashMap;
use std::fmt;

/// How one atom was obtained.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Justification {
    /// Present in the input database.
    Input,
    /// Derived by instantiating rule `rule_idx` with `subst`; `premises`
    /// are the instantiated body atoms.
    Rule {
        rule_idx: usize,
        subst: Subst,
        premises: Vec<GroundAtom>,
    },
}

/// The result of a provenance-tracking evaluation: the fixpoint plus one
/// (first-found) justification per atom.
#[derive(Clone, Debug)]
pub struct Traced {
    pub db: Database,
    justifications: HashMap<GroundAtom, Justification>,
}

impl Traced {
    /// The recorded justification for `atom`, if it is in the fixpoint.
    pub fn justification(&self, atom: &GroundAtom) -> Option<&Justification> {
        self.justifications.get(atom)
    }

    /// Build the full proof tree for `atom`. Returns `None` if the atom is
    /// not in the fixpoint. The tree is finite because justifications are
    /// recorded in derivation order: premises always precede conclusions.
    pub fn explain(&self, atom: &GroundAtom) -> Option<Proof> {
        let j = self.justifications.get(atom)?;
        let node = match j {
            Justification::Input => Proof {
                conclusion: atom.clone(),
                rule_idx: None,
                premises: Vec::new(),
            },
            Justification::Rule {
                rule_idx, premises, ..
            } => Proof {
                conclusion: atom.clone(),
                rule_idx: Some(*rule_idx),
                premises: premises
                    .iter()
                    .map(|p| self.explain(p).expect("premise was derived earlier"))
                    .collect(),
            },
        };
        Some(node)
    }
}

/// A proof tree: the conclusion, the rule that fired (if not input), and
/// recursively-justified premises.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Proof {
    pub conclusion: GroundAtom,
    /// `None` for input atoms.
    pub rule_idx: Option<usize>,
    pub premises: Vec<Proof>,
}

impl Proof {
    /// Depth of the tree (input atoms have depth 0).
    pub fn depth(&self) -> usize {
        self.premises
            .iter()
            .map(Proof::depth)
            .max()
            .map_or(0, |d| d + 1)
    }

    /// Total number of rule applications in the tree.
    pub fn size(&self) -> usize {
        usize::from(self.rule_idx.is_some()) + self.premises.iter().map(Proof::size).sum::<usize>()
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        for _ in 0..indent {
            write!(f, "  ")?;
        }
        match self.rule_idx {
            None => writeln!(f, "{}  [input]", self.conclusion)?,
            Some(r) => writeln!(f, "{}  [rule {r}]", self.conclusion)?,
        }
        for p in &self.premises {
            p.fmt_indented(f, indent + 1)?;
        }
        Ok(())
    }
}

impl fmt::Display for Proof {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

/// Evaluate `program` on `input` (naive rounds, same fixpoint as
/// `naive::evaluate`) recording one justification per derived atom.
pub fn evaluate_traced(program: &Program, input: &Database) -> Traced {
    assert!(
        program.is_positive(),
        "provenance tracking requires a positive program"
    );
    let plans: Vec<RulePlan> = program.rules.iter().map(RulePlan::compile).collect();
    let mut db = input.clone();
    let mut justifications: HashMap<GroundAtom, Justification> =
        input.iter().map(|a| (a, Justification::Input)).collect();

    loop {
        let mut new: Vec<(GroundAtom, Justification)> = Vec::new();
        {
            let mut idx = IndexSet::new(&db);
            for (rule_idx, plan) in plans.iter().enumerate() {
                let order = plan.greedy_order(&db);
                join_body(plan, &order, &mut idx, None, |assignment| {
                    let head = instantiate_head(plan, assignment);
                    if db.contains(&head) {
                        return;
                    }
                    // Reconstruct the substitution and premises.
                    let mut subst = Subst::new();
                    for (slot, var) in plan.vars.iter().enumerate() {
                        if let Some(c) = assignment[slot] {
                            subst.bind(*var, Term::Const(c));
                        }
                    }
                    let premises: Vec<GroundAtom> = program.rules[rule_idx]
                        .positive_body()
                        .map(|a| subst.ground_atom(a).expect("body fully bound"))
                        .collect();
                    new.push((
                        head,
                        Justification::Rule {
                            rule_idx,
                            subst,
                            premises,
                        },
                    ));
                });
            }
        }
        let mut changed = false;
        for (atom, j) in new {
            if db.insert(atom.clone()) {
                justifications.entry(atom).or_insert(j);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Traced { db, justifications }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::{fact, parse_database, parse_program};

    fn tc() -> Program {
        parse_program("g(X, Z) :- a(X, Z). g(X, Z) :- g(X, Y), g(Y, Z).").unwrap()
    }

    #[test]
    fn fixpoint_matches_naive() {
        let edb = parse_database("a(1,2). a(2,3). a(3,4).").unwrap();
        let traced = evaluate_traced(&tc(), &edb);
        assert_eq!(traced.db, crate::naive::evaluate(&tc(), &edb));
    }

    #[test]
    fn input_atoms_are_justified_as_input() {
        let edb = parse_database("a(1,2).").unwrap();
        let traced = evaluate_traced(&tc(), &edb);
        assert_eq!(
            traced.justification(&fact("a", [1, 2])),
            Some(&Justification::Input)
        );
    }

    #[test]
    fn derived_atom_has_rule_justification() {
        let edb = parse_database("a(1,2).").unwrap();
        let traced = evaluate_traced(&tc(), &edb);
        match traced.justification(&fact("g", [1, 2])) {
            Some(Justification::Rule {
                rule_idx, premises, ..
            }) => {
                assert_eq!(*rule_idx, 0);
                assert_eq!(premises, &vec![fact("a", [1, 2])]);
            }
            other => panic!("unexpected justification {other:?}"),
        }
    }

    #[test]
    fn proof_tree_shape() {
        let edb = parse_database("a(1,2). a(2,3).").unwrap();
        let traced = evaluate_traced(&tc(), &edb);
        let proof = traced.explain(&fact("g", [1, 3])).unwrap();
        // g(1,3) from rule 1 with premises g(1,2), g(2,3), each from rule 0.
        assert_eq!(proof.rule_idx, Some(1));
        assert_eq!(proof.premises.len(), 2);
        assert_eq!(proof.depth(), 2);
        assert_eq!(proof.size(), 3); // rule 1 once, rule 0 twice
        let rendered = proof.to_string();
        assert!(rendered.contains("[rule 1]"));
        assert!(rendered.contains("[input]"));
    }

    #[test]
    fn absent_atom_has_no_proof() {
        let edb = parse_database("a(1,2).").unwrap();
        let traced = evaluate_traced(&tc(), &edb);
        assert!(traced.explain(&fact("g", [2, 1])).is_none());
    }

    #[test]
    fn proofs_are_well_founded() {
        // Cyclic data must still give finite proofs.
        let edb = parse_database("a(1,2). a(2,1).").unwrap();
        let traced = evaluate_traced(&tc(), &edb);
        for atom in traced.db.iter() {
            let proof = traced.explain(&atom).unwrap();
            assert!(proof.depth() <= 16, "proof for {atom} too deep");
        }
    }
}
