//! QSQR — Query-SubQuery with recursion: memoized top-down evaluation.
//!
//! The paper's introduction situates itself among query-evaluation methods
//! that "use the constants specified in the query in order to restrict the
//! size of intermediate results" (§I), citing top-down approaches
//! (Henschen–Naqvi, Ullman's survey) alongside magic sets. QSQR is the
//! standard memoized top-down strategy: starting from the query's bound
//! arguments, it issues *subqueries* (adorned predicate + binding for the
//! bound positions), evaluates rule bodies left-to-right propagating
//! bindings sideways, and memoizes both the subqueries issued (`input`)
//! and the answers produced (`ans`). Iterating to a global fixpoint makes
//! the recursive case sound and complete.
//!
//! QSQR and the magic-sets rewriting explore the same relevant portion of
//! the fixpoint; the test suite asserts they produce identical answers, and
//! the benchmark suite uses them as mutual baselines.

use crate::magic::Adornment;
use crate::stats::Stats;
use datalog_ast::{Atom, Const, Database, GroundAtom, Pred, Program, Subst, Term, Tuple};
use std::collections::{BTreeMap, BTreeSet};

/// A memo key: adorned predicate.
type AdornedPred = (Pred, Adornment);

struct QsqState<'p> {
    program: &'p Program,
    edb: &'p Database,
    idb: BTreeSet<Pred>,
    /// Subqueries issued: bound-position values per adorned predicate.
    input: BTreeMap<AdornedPred, BTreeSet<Vec<Const>>>,
    /// Answers: full tuples per adorned predicate.
    ans: BTreeMap<AdornedPred, BTreeSet<Tuple>>,
    stats: Stats,
}

impl<'p> QsqState<'p> {
    fn bound_values(&self, atom: &Atom, adornment: &Adornment, s: &Subst) -> Option<Vec<Const>> {
        adornment
            .bound_positions()
            .map(|i| s.apply_term(atom.terms[i]).as_const())
            .collect()
    }

    /// Issue a subquery (idempotent). Returns true if it is new.
    fn issue(&mut self, key: AdornedPred, bound: Vec<Const>) -> bool {
        self.input.entry(key).or_default().insert(bound)
    }

    /// One pass: process every memoized subquery against every rule.
    /// Returns whether anything (input or ans) changed.
    fn pass(&mut self) -> bool {
        let before_inputs: usize = self.input.values().map(BTreeSet::len).sum();
        let before_answers: usize = self.ans.values().map(BTreeSet::len).sum();

        let subqueries: Vec<(AdornedPred, Vec<Vec<Const>>)> = self
            .input
            .iter()
            .map(|(k, v)| (k.clone(), v.iter().cloned().collect()))
            .collect();
        for ((pred, adornment), bindings) in subqueries {
            for rule_idx in 0..self.program.len() {
                if self.program.rules[rule_idx].head.pred != pred {
                    continue;
                }
                for binding in &bindings {
                    self.evaluate_rule(rule_idx, &adornment, binding);
                }
            }
        }

        let after_inputs: usize = self.input.values().map(BTreeSet::len).sum();
        let after_answers: usize = self.ans.values().map(BTreeSet::len).sum();
        after_inputs > before_inputs || after_answers > before_answers
    }

    /// Evaluate one rule for a subquery: bind the head's bound positions to
    /// `binding`, sweep the body left-to-right issuing subqueries at IDB
    /// atoms and joining with memoized answers.
    fn evaluate_rule(&mut self, rule_idx: usize, adornment: &Adornment, binding: &[Const]) {
        let rule = self.program.rules[rule_idx].clone();
        // Head binding: unify bound positions with the binding values.
        let mut subst = Subst::new();
        for (pos, &value) in adornment.bound_positions().zip(binding.iter()) {
            match rule.head.terms[pos] {
                Term::Const(c) => {
                    if c != value {
                        return; // head constant conflicts with the binding
                    }
                }
                Term::Var(v) => {
                    if !subst.try_bind(v, Term::Const(value)) {
                        return; // repeated head variable with clashing values
                    }
                }
            }
        }
        let body: Vec<Atom> = rule.positive_body().cloned().collect();
        let mut worklist = vec![(0usize, subst)];
        while let Some((i, s)) = worklist.pop() {
            if i == body.len() {
                if let Some(head) = s.ground_atom(&rule.head) {
                    self.stats.matches += 1;
                    let key = (head.pred, adornment.clone());
                    if self.ans.entry(key).or_default().insert(head.tuple.clone()) {
                        self.stats.derivations += 1;
                    }
                }
                continue;
            }
            let atom = &body[i];
            if self.idb.contains(&atom.pred) {
                // Sub-adornment from the currently bound variables.
                let bound_vars: BTreeSet<_> = s
                    .iter()
                    .filter(|(_, t)| t.is_const())
                    .map(|(v, _)| v)
                    .collect();
                let sub_adornment = Adornment::of_atom(atom, &bound_vars);
                if let Some(bound) = self.bound_values(atom, &sub_adornment, &s) {
                    self.issue((atom.pred, sub_adornment.clone()), bound);
                }
                // Join with memoized answers for this adorned predicate —
                // answers memoized under ANY adornment of this predicate are
                // valid tuples; restrict matching by the current bindings.
                // Facts seeded in the input database under the original IDB
                // name (the §IV uniform-equivalence regime) join in too.
                let tuples: Vec<Tuple> = self
                    .ans
                    .iter()
                    .filter(|((p, _), _)| *p == atom.pred)
                    .flat_map(|(_, set)| set.iter().cloned())
                    .chain(self.edb.relation(atom.pred).map(Tuple::from))
                    .collect();
                for tuple in tuples {
                    self.stats.probes += 1;
                    let g = GroundAtom {
                        pred: atom.pred,
                        tuple,
                    };
                    let pattern = s.apply_atom(atom);
                    let mut s2 = s.clone();
                    if datalog_ast::match_atom_into(&pattern, &g, &mut s2) {
                        worklist.push((i + 1, s2));
                    }
                }
            } else {
                let pattern = s.apply_atom(atom);
                for tuple in self.edb.relation(atom.pred) {
                    self.stats.probes += 1;
                    let g = GroundAtom {
                        pred: atom.pred,
                        tuple: tuple.into(),
                    };
                    let mut s2 = s.clone();
                    if datalog_ast::match_atom_into(&pattern, &g, &mut s2) {
                        worklist.push((i + 1, s2));
                    }
                }
            }
        }
    }
}

/// Answer `query` over `edb` with QSQR. Same contract as
/// [`crate::magic::answer`]: returns the matching tuples under the query's
/// predicate. Positive programs only.
pub fn answer(program: &Program, edb: &Database, query: &Atom) -> Database {
    answer_with_stats(program, edb, query).0
}

/// [`answer`], also returning work counters.
pub fn answer_with_stats(program: &Program, edb: &Database, query: &Atom) -> (Database, Stats) {
    assert!(program.is_positive(), "QSQR requires a positive program");
    let mut state = QsqState {
        program,
        edb,
        idb: program.intentional(),
        input: BTreeMap::new(),
        ans: BTreeMap::new(),
        stats: Stats::default(),
    };
    let query_adornment = Adornment::of_atom(query, &BTreeSet::new());
    let binding: Vec<Const> = query_adornment
        .bound_positions()
        .map(|i| {
            query.terms[i]
                .as_const()
                .expect("bound position holds a constant")
        })
        .collect();
    state.issue((query.pred, query_adornment.clone()), binding);

    // Global fixpoint: passes until neither subqueries nor answers grow.
    loop {
        state.stats.iterations += 1;
        if !state.pass() {
            break;
        }
    }

    // Collect answers by unifying against the query atom (constants and
    // repeated variables alike). The input database's own facts for the
    // query predicate belong in the answer too: the predicate may be
    // extensional, or intentional with seeded facts.
    let mut out = Database::new();
    let memoized = state
        .ans
        .iter()
        .filter(|((p, _), _)| *p == query.pred)
        .flat_map(|(_, tuples)| tuples.iter().map(|t| &**t));
    for tuple in memoized.chain(edb.relation(query.pred)) {
        let g = GroundAtom {
            pred: query.pred,
            tuple: tuple.into(),
        };
        if datalog_ast::match_atom(query, &g).is_some() {
            out.insert(g);
        }
    }
    (out, state.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{magic, seminaive};
    use datalog_ast::{parse_atom, parse_database, parse_program};

    fn tc_left() -> Program {
        parse_program("g(X, Z) :- a(X, Z). g(X, Z) :- a(X, Y), g(Y, Z).").unwrap()
    }

    fn tc_doubling() -> Program {
        parse_program("g(X, Z) :- a(X, Z). g(X, Z) :- g(X, Y), g(Y, Z).").unwrap()
    }

    #[test]
    fn bound_free_chain() {
        let edb = parse_database("a(1,2). a(2,3). a(3,4). a(10,11).").unwrap();
        let query = parse_atom("g(1, X)").unwrap();
        let got = answer(&tc_left(), &edb, &query);
        assert_eq!(got, magic::answer(&tc_left(), &edb, &query));
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn agrees_with_magic_on_doubling_rule() {
        let edb = parse_database("a(1,2). a(2,3). a(3,1). a(7,8).").unwrap();
        for q in ["g(1, X)", "g(X, 3)", "g(X, Y)", "g(2, 1)"] {
            let query = parse_atom(q).unwrap();
            assert_eq!(
                answer(&tc_doubling(), &edb, &query),
                magic::answer(&tc_doubling(), &edb, &query),
                "query {q}"
            );
        }
    }

    #[test]
    fn same_generation_bound_query() {
        let p = parse_program(
            "sg(X, Y) :- flat(X, Y).
             sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).",
        )
        .unwrap();
        let edb = parse_database(
            "up(1, 11). up(2, 12). flat(11, 12). down(12, 2). down(11, 1). flat(1, 2).",
        )
        .unwrap();
        let query = parse_atom("sg(1, Y)").unwrap();
        let got = answer(&p, &edb, &query);
        let full = seminaive::evaluate(&p, &edb);
        let expected: Database = full
            .relation(Pred::new("sg"))
            .filter(|t| t[0] == Const::Int(1))
            .map(|t| GroundAtom {
                pred: Pred::new("sg"),
                tuple: t.into(),
            })
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn avoids_irrelevant_component() {
        let mut facts = String::new();
        for i in 0..15 {
            facts.push_str(&format!("a({}, {}).", i, i + 1));
            facts.push_str(&format!("a({}, {}).", 100 + i, 101 + i));
        }
        let edb = parse_database(&facts).unwrap();
        let query = parse_atom("g(0, X)").unwrap();
        let (got, qsq_stats) = answer_with_stats(&tc_left(), &edb, &query);
        assert_eq!(got.len(), 15);
        let (_, full_stats) = seminaive::evaluate_with_stats(&tc_left(), &edb);
        assert!(
            qsq_stats.derivations < full_stats.derivations,
            "qsq {} vs full {}",
            qsq_stats.derivations,
            full_stats.derivations
        );
    }

    #[test]
    fn fully_bound_hit_and_miss() {
        let edb = parse_database("a(1,2). a(2,3).").unwrap();
        assert_eq!(
            answer(&tc_left(), &edb, &parse_atom("g(1, 3)").unwrap()).len(),
            1
        );
        assert!(answer(&tc_left(), &edb, &parse_atom("g(3, 1)").unwrap()).is_empty());
    }

    #[test]
    fn head_constant_rules() {
        let p = parse_program("special(1, X) :- a(1, X). special(9, X) :- b(X).").unwrap();
        let edb = parse_database("a(1, 5). b(6).").unwrap();
        let got = answer(&p, &edb, &parse_atom("special(1, X)").unwrap());
        assert_eq!(got.len(), 1);
        assert!(got.contains(&datalog_ast::fact("special", [1, 5])));
        let got9 = answer(&p, &edb, &parse_atom("special(9, X)").unwrap());
        assert!(got9.contains(&datalog_ast::fact("special", [9, 6])));
    }

    #[test]
    fn repeated_variable_query() {
        // Regression (found by the differential fuzzer): the answer filter
        // ignored repeated variables, so `g(X, X)` returned every closure
        // tuple instead of only the diagonal.
        let edb = parse_database("a(1,2). a(2,3). a(3,1).").unwrap();
        let query = parse_atom("g(X, X)").unwrap();
        let got = answer(&tc_doubling(), &edb, &query);
        let full = seminaive::evaluate(&tc_doubling(), &edb);
        let expected: Database = full
            .relation(Pred::new("g"))
            .filter(|t| t[0] == t[1])
            .map(|t| GroundAtom {
                pred: Pred::new("g"),
                tuple: t.into(),
            })
            .collect();
        assert_eq!(got, expected);
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn query_on_edb_predicate() {
        // Regression (found by the differential fuzzer): nothing scanned the
        // input database for an extensional query predicate, so the answer
        // came back empty.
        let edb = parse_database("a(1,2). a(1,3). a(2,3).").unwrap();
        let got = answer(&tc_left(), &edb, &parse_atom("a(1, X)").unwrap());
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn seeded_idb_facts_are_visible() {
        // Regression (found by the differential fuzzer): facts seeded under
        // an IDB predicate name (§IV uniform-equivalence regime) never
        // reached the memo tables, so answers derived through them — and the
        // seeded facts themselves — were missing.
        let edb = parse_database("a(1,2). g(2,7).").unwrap();
        let query = parse_atom("g(1, X)").unwrap();
        let got = answer(&tc_doubling(), &edb, &query);
        assert_eq!(got, magic::answer(&tc_doubling(), &edb, &query));
        assert_eq!(got.len(), 2); // g(1,2) and, through the seed, g(1,7)
    }

    #[test]
    fn empty_program_and_edb() {
        let got = answer(
            &Program::empty(),
            &Database::new(),
            &parse_atom("g(X)").unwrap(),
        );
        assert!(got.is_empty());
    }
}

#[cfg(test)]
mod recursion_tests {
    use super::*;
    use crate::seminaive;
    use datalog_ast::{parse_atom, parse_database, parse_program};

    #[test]
    fn mutual_recursion_through_subqueries() {
        let p = parse_program(
            "even(X) :- zero(X).
             odd(Y) :- even(X), succ(X, Y).
             even(Y) :- odd(X), succ(X, Y).",
        )
        .unwrap();
        let mut facts = String::from("zero(0).");
        for i in 0..8 {
            facts.push_str(&format!("succ({}, {}).", i, i + 1));
        }
        let edb = parse_database(&facts).unwrap();
        let hit = answer(&p, &edb, &parse_atom("even(6)").unwrap());
        assert_eq!(hit.len(), 1);
        let miss = answer(&p, &edb, &parse_atom("even(7)").unwrap());
        assert!(miss.is_empty());
        // Free query agrees with bottom-up.
        let all = answer(&p, &edb, &parse_atom("odd(X)").unwrap());
        let full = seminaive::evaluate(&p, &edb);
        assert_eq!(all.len(), full.relation_len(Pred::new("odd")));
    }

    #[test]
    fn nonlinear_rule_with_two_idb_atoms() {
        // The doubling rule issues subqueries with different adornments for
        // its two g-atoms (bf then bf after binding); answers must match.
        let p = parse_program("g(X, Z) :- a(X, Z). g(X, Z) :- g(X, Y), g(Y, Z).").unwrap();
        let edb = parse_database("a(1,2). a(2,3). a(3,4). a(4,5).").unwrap();
        for q in ["g(1, 5)", "g(2, X)", "g(X, 5)"] {
            let query = parse_atom(q).unwrap();
            assert_eq!(
                answer(&p, &edb, &query),
                crate::magic::answer(&p, &edb, &query),
                "query {q}"
            );
        }
    }

    #[test]
    fn constants_inside_rule_bodies() {
        let p = parse_program(
            "vip(X) :- member(X, 1).
             reach(X) :- vip(X).
             reach(Y) :- reach(X), knows(X, Y).",
        )
        .unwrap();
        let edb = parse_database("member(7, 1). member(8, 2). knows(7, 9).").unwrap();
        let got = answer(&p, &edb, &parse_atom("reach(X)").unwrap());
        assert_eq!(got.len(), 2); // 7 and 9, not 8
    }
}
