//! A fixed-size thread pool (std-only; the build environment is offline, so
//! no tokio/rayon). Workers pull jobs from a shared channel; dropping the
//! pool closes the channel and joins every worker, so shutdown waits for
//! in-flight jobs to finish.
//!
//! This pool is shared infrastructure: the engine's parallel rule
//! evaluation ([`crate::EvalContext`]) partitions per-round join work
//! across it, and `datalog-service` re-exports it to run whole client
//! connections on the same primitive.

use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A bounded crew of worker threads executing queued jobs.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn `size` workers (at least one).
    pub fn new(size: usize) -> ThreadPool {
        let size = size.max(1);
        let (sender, receiver) = std::sync::mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..size)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("datalog-worker-{i}"))
                    .spawn(move || worker_loop(&receiver))
                    .expect("spawn worker thread")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Queue a job; it runs as soon as a worker is free. Jobs submitted
    /// after the pool started dropping are silently discarded.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        if let Some(sender) = &self.sender {
            // The receiver lives in the workers; send only fails if every
            // worker has already exited, in which case dropping the job is
            // the only sensible behaviour.
            let _ = sender.send(Box::new(job));
        }
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the lock only while *fetching* a job, never while running it.
        let job = match receiver.lock() {
            Ok(guard) => guard.recv(),
            Err(poisoned) => poisoned.into_inner().recv(),
        };
        match job {
            Ok(job) => job(),
            Err(_) => return, // channel closed: pool is shutting down
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel makes every idle worker's recv() fail; busy
        // workers finish their current job first.
        self.sender.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_all_jobs_then_joins() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(4);
            assert_eq!(pool.size(), 4);
            for _ in 0..100 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Drop joins the pool, so all jobs are done after the block.
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn zero_size_is_clamped_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.size(), 1);
        let (tx, rx) = std::sync::mpsc::channel();
        pool.execute(move || tx.send(42).unwrap());
        assert_eq!(rx.recv().unwrap(), 42);
    }

    #[test]
    fn panicking_job_kills_one_worker_not_the_pool() {
        let pool = ThreadPool::new(2);
        pool.execute(|| panic!("job failure"));
        let (tx, rx) = std::sync::mpsc::channel();
        pool.execute(move || tx.send(1).unwrap());
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(5)), Ok(1));
    }
}
