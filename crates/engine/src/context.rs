//! Persistent evaluation contexts: incremental indexes + parallel rounds.
//!
//! The paper's headline promise is "fewer joins during the evaluation"
//! (§I). The seed evaluators honoured the *logical* half of that promise
//! but threw the physical half away: every fixpoint round rebuilt every
//! `(predicate, bound-positions)` hash index from scratch and recomputed
//! every rule's greedy join order once per delta position. [`EvalContext`]
//! fixes both, and since the columnar-storage work it does so without
//! copying tuples at all:
//!
//! * **Incremental row-id indexes in dictionary-code space.** The context
//!   owns an [`IndexStore`] of per-`(pred, arity, positions)` postings
//!   lists that live across fixpoint rounds: a map from the hash of the
//!   projected **dictionary codes** (see [`Relation::codes`]) to the `u32`
//!   row-ids carrying it in the database's arena. Building an index is a
//!   fold over `u32` code columns — it never touches the row arena — and
//!   appending a derived row is pushing one `u32` per live index
//!   ([`Stats::index_appends`]); an index is built at most once per pattern
//!   per context ([`Stats::index_builds`]). The invariant: **every
//!   mutation of the context database flows through the context**, so ids
//!   always resolve against the exact arena they were taken from
//!   (insertions are append-only and keep ids stable; deletions
//!   conservatively clear the store, which re-fills lazily).
//!
//! * **Compiled join scripts, specialized executors.** Each `(rule,
//!   order)` pair compiles once per round into a [`JoinScript`] whose
//!   steps know statically which index to probe, how to build the probe
//!   key, and which tuple positions bind which variable slots. Eligible
//!   scripts are then lowered to the specialized columnar kernels in
//!   [`crate::kernels`] (single-atom scans, batched two-atom hash joins
//!   monomorphized by key width); everything else — negation, 3+ body
//!   atoms, wide keys — runs on the row-at-a-time interpreter in this
//!   module, which doubles as the differential reference
//!   ([`EvalOptions::interpreted`] forces it everywhere). Both paths probe
//!   in code space: a probe key's constants are translated through the
//!   target column's dictionary first, so a constant that never appears in
//!   a column matches nothing without touching a single row
//!   ([`Stats::dict_filtered_probes`]), and candidate verification is a
//!   `u32` compare per bound column. Hash collisions are therefore
//!   admitted by the postings map but never produce a wrong answer.
//!
//! * **Parallel rounds.** With `EvalOptions::threads > 1`, the per-round
//!   `(rule × delta-position)` work items — further sharded by striding
//!   the first join step's postings list, so even a single recursive rule
//!   parallelises — are dispatched to a shared [`crate::pool::ThreadPool`]
//!   against a read-only snapshot of the indexes. Derived tuples merge
//!   through the existing set-semantics dedup, so the result is
//!   tuple-identical to sequential evaluation at any worker count — and at
//!   either executor tier.
//!
//! `threads == 1` reproduces the seed's sequential behaviour (modulo the
//! index reuse); [`EvalOptions::default`] asks the OS for
//! `available_parallelism`.

use crate::kernels::{self, Executor};
use crate::plan::{RulePlan, Slot};
use crate::pool::ThreadPool;
use crate::stats::Stats;
use datalog_ast::{
    hash_codes_fold, hash_codes_seed, Const, Database, GroundAtom, Pred, Program, Relation,
    RowHashMap,
};
use std::collections::HashMap;
use std::sync::{mpsc, Arc};

/// Evaluation tuning knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvalOptions {
    /// Number of worker threads for rule evaluation. `1` is exactly the
    /// sequential discipline; the default is the machine's
    /// `available_parallelism`.
    pub threads: usize,
    /// Lower eligible join scripts to the specialized columnar kernels
    /// (default). `false` forces the row-at-a-time interpreter for every
    /// rule — the differential reference the oracle fuzzer and the E20
    /// benchmark compare the kernels against.
    pub specialize: bool,
    /// Lower eligible 3+-atom scripts to the multi-atom pipelined kernel
    /// (default). `false` keeps the 1-/2-atom kernels but sends longer
    /// bodies to the interpreter — the reference side of the pipeline
    /// differentials, isolating the new tier.
    pub pipeline: bool,
}

impl EvalOptions {
    /// Sequential evaluation (the seed behaviour).
    pub fn sequential() -> EvalOptions {
        EvalOptions {
            threads: 1,
            specialize: true,
            pipeline: true,
        }
    }

    /// Evaluate with `threads` workers (clamped to at least 1).
    pub fn with_threads(threads: usize) -> EvalOptions {
        EvalOptions {
            threads: threads.max(1),
            specialize: true,
            pipeline: true,
        }
    }

    /// Sequential evaluation on the interpreter only — no specialized
    /// kernels. This is the reference side of the kernel differentials.
    pub fn interpreted() -> EvalOptions {
        EvalOptions {
            threads: 1,
            specialize: false,
            pipeline: false,
        }
    }

    /// Toggle specialized-kernel lowering on this option set.
    pub fn with_specialize(mut self, specialize: bool) -> EvalOptions {
        self.specialize = specialize;
        self
    }

    /// Toggle the multi-atom pipelined kernel on this option set (the
    /// 1-/2-atom kernels follow `specialize`).
    pub fn with_pipeline(mut self, pipeline: bool) -> EvalOptions {
        self.pipeline = pipeline;
        self
    }
}

impl Default for EvalOptions {
    fn default() -> EvalOptions {
        EvalOptions {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            specialize: true,
            pipeline: true,
        }
    }
}

/// One hash index: hash of the projected dictionary codes on a fixed
/// position list → the row-ids whose projection carries that hash
/// (collisions possible; executors verify candidates code-by-code).
type Index = RowHashMap<Vec<u32>>;

/// The per-`(pred, arity)` index group: one [`Index`] per bound-position
/// pattern ever probed.
type IndexGroup = HashMap<Box<[usize]>, Index>;

/// Owned, incrementally-maintained row-id indexes over a database.
///
/// Unlike [`crate::plan::IndexSet`] (which borrows a database snapshot,
/// copies candidate tuples, and dies with the round), the store holds only
/// `u32` ids into the database's arenas and survives rounds: new rows are
/// appended, never re-scanned. Ids are valid against the exact database
/// the store was ensured/absorbed from. Keys are hashes of projected
/// *dictionary codes*, so building and appending read only `u32` columns.
#[derive(Clone, Debug, Default)]
pub(crate) struct IndexStore {
    map: HashMap<(Pred, usize), IndexGroup>,
}

impl IndexStore {
    /// Build the `(pred, arity, positions)` index from `db` if it does not
    /// exist yet. Returns whether a build happened.
    fn ensure(&mut self, db: &Database, pred: Pred, arity: usize, positions: &[usize]) -> bool {
        let by_pos = self.map.entry((pred, arity)).or_default();
        if by_pos.contains_key(positions) {
            return false;
        }
        let mut index = Index::default();
        if let Some(rel) = db.relation_of(pred, arity) {
            // Columnar build: fold the projected code columns, never the
            // row arena.
            let cols: Vec<&[u32]> = positions.iter().map(|&p| rel.codes(p)).collect();
            let seed = hash_codes_seed(positions.len());
            for id in 0..rel.len() as u32 {
                let mut h = seed;
                for col in &cols {
                    h = hash_codes_fold(h, col[id as usize]);
                }
                index.entry(h).or_default().push(id);
            }
        }
        by_pos.insert(positions.into(), index);
        true
    }

    /// Row-ids of `pred`/`arity` whose code projection on `positions`
    /// hashes to `hash`. The index must have been [`IndexStore::ensure`]d.
    pub(crate) fn probe(&self, pred: Pred, arity: usize, positions: &[usize], hash: u64) -> &[u32] {
        debug_assert!(
            self.map
                .get(&(pred, arity))
                .is_some_and(|m| m.contains_key(positions)),
            "probe of an index that was never ensured: {pred:?}/{arity} {positions:?}"
        );
        self.map
            .get(&(pred, arity))
            .and_then(|m| m.get(positions))
            .and_then(|idx| idx.get(&hash))
            .map_or(&[], Vec::as_slice)
    }

    /// Append freshly inserted rows (given as `(pred, arity, row-id)`, ids
    /// valid in `db`) into every live index of their predicate. Callers
    /// guarantee the rows are new w.r.t. the indexed database (the
    /// semi-naive discipline), so this never introduces duplicates.
    /// Returns the number of (row, index) appends performed.
    fn absorb(&mut self, db: &Database, fresh: &[(Pred, usize, u32)]) -> u64 {
        let mut appends = 0;
        for &(pred, arity, id) in fresh {
            let Some(by_pos) = self.map.get_mut(&(pred, arity)) else {
                continue;
            };
            let rel = db
                .relation_of(pred, arity)
                .expect("freshly inserted row has a relation");
            for (positions, index) in by_pos.iter_mut() {
                let mut h = hash_codes_seed(positions.len());
                for &p in positions.iter() {
                    h = hash_codes_fold(h, rel.code_at(p, id));
                }
                index.entry(h).or_default().push(id);
                appends += 1;
            }
        }
        appends
    }

    /// Drop every index (after a non-monotone mutation, which invalidates
    /// row-ids); they re-fill lazily from the current database.
    fn clear(&mut self) {
        self.map.clear();
    }
}

/// Where a probe key component comes from.
#[derive(Clone, Copy, Debug)]
pub(crate) enum KeySrc {
    Const(Const),
    Var(usize),
}

impl KeySrc {
    #[inline]
    pub(crate) fn value(self, assignment: &[Option<Const>]) -> Const {
        match self {
            KeySrc::Const(c) => c,
            KeySrc::Var(v) => assignment[v].expect("variable bound by join order"),
        }
    }
}

/// One compiled join step: which index to probe, how to build the key,
/// and which tuple positions bind which variable slots.
#[derive(Clone, Debug)]
pub(crate) struct Step {
    /// Body index of the atom (identifies the delta-restricted step).
    pub(crate) atom: usize,
    pub(crate) negated: bool,
    pub(crate) pred: Pred,
    /// The atom's arity (selects the arena relation to read rows from).
    pub(crate) arity: usize,
    /// Statically-bound argument positions (the index pattern).
    pub(crate) positions: Box<[usize]>,
    /// Sources of the probe key, one per bound position. For negated
    /// atoms: sources of the full ground tuple (one per argument).
    pub(crate) key: Vec<KeySrc>,
    /// `(tuple position, variable slot)` pairs newly bound by this step.
    pub(crate) bind: Vec<(usize, usize)>,
    /// Repeated first occurrences within this atom: positions that must
    /// equal a slot bound earlier in `bind`.
    pub(crate) check: Vec<(usize, usize)>,
}

impl Step {
    /// The tuple position a variable slot is bound from by this step.
    pub(crate) fn bind_pos(&self, var: usize) -> Option<usize> {
        self.bind
            .iter()
            .find(|&&(_, w)| w == var)
            .map(|&(pos, _)| pos)
    }

    /// `check` resolved to `(position, position)` pairs within this step's
    /// tuple (repeated-variable equality as a row-local compare).
    pub(crate) fn check_pairs(&self) -> Vec<(usize, usize)> {
        self.check
            .iter()
            .map(|&(pos, v)| {
                let bound_at = self
                    .bind_pos(v)
                    .expect("checked variable first bound by the same step");
                (pos, bound_at)
            })
            .collect()
    }
}

/// A rule's body compiled for a fixed atom order, plus its head recipe.
#[derive(Clone, Debug)]
pub(crate) struct JoinScript {
    pub(crate) steps: Vec<Step>,
    pub(crate) head_pred: Pred,
    pub(crate) head: Vec<KeySrc>,
    pub(crate) num_vars: usize,
}

fn keysrc(slot: Slot) -> KeySrc {
    match slot {
        Slot::Const(c) => KeySrc::Const(c),
        Slot::Var(v) => KeySrc::Var(v),
    }
}

/// Compile `plan`'s body under `order` into a [`JoinScript`]. The binding
/// pattern at each depth is fully determined by the order, which is what
/// lets the executor run against pre-built, read-only indexes.
pub(crate) fn compile_script(plan: &RulePlan, order: &[usize]) -> JoinScript {
    let mut bound = vec![false; plan.num_vars()];
    let mut steps = Vec::with_capacity(order.len());
    for &atom_i in order {
        let atom = &plan.body[atom_i];
        if atom.negated {
            // Safety (validated upstream) guarantees all variables bound.
            steps.push(Step {
                atom: atom_i,
                negated: true,
                pred: atom.pred,
                arity: atom.slots.len(),
                positions: Box::default(),
                key: atom.slots.iter().map(|&s| keysrc(s)).collect(),
                bind: Vec::new(),
                check: Vec::new(),
            });
            continue;
        }
        let mut positions = Vec::new();
        let mut key = Vec::new();
        let mut bind: Vec<(usize, usize)> = Vec::new();
        let mut check = Vec::new();
        for (i, s) in atom.slots.iter().enumerate() {
            match *s {
                Slot::Const(c) => {
                    positions.push(i);
                    key.push(KeySrc::Const(c));
                }
                Slot::Var(v) if bound[v] => {
                    positions.push(i);
                    key.push(KeySrc::Var(v));
                }
                // Second occurrence of a variable first bound by this very
                // atom: equality-check after binding.
                Slot::Var(v) if bind.iter().any(|&(_, w)| w == v) => check.push((i, v)),
                Slot::Var(v) => bind.push((i, v)),
            }
        }
        for &(_, v) in &bind {
            bound[v] = true;
        }
        steps.push(Step {
            atom: atom_i,
            negated: false,
            pred: atom.pred,
            arity: atom.slots.len(),
            positions: positions.into(),
            key,
            bind,
            check,
        });
    }
    JoinScript {
        steps,
        head_pred: plan.head.pred,
        head: plan.head.slots.iter().map(|&s| keysrc(s)).collect(),
        num_vars: plan.num_vars(),
    }
}

/// One schedulable unit: a script, optionally delta-restricted at one body
/// atom, enumerating only every `stride`-th row (from `offset`) of the
/// first join step — the sharding that lets a single rule span workers.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Task {
    pub(crate) script: usize,
    pub(crate) delta_atom: Option<usize>,
    pub(crate) offset: usize,
    pub(crate) stride: usize,
}

/// The index store and relation a step reads from: the per-round delta
/// pair when the task is delta-restricted at this step, the persistent
/// pair otherwise. Shared by the interpreter and every kernel so source
/// selection cannot diverge between executor tiers.
pub(crate) fn step_source<'a>(
    step: &Step,
    task: Task,
    store: &'a IndexStore,
    delta_store: &'a IndexStore,
    db: &'a Database,
    delta_db: &'a Database,
) -> (&'a IndexStore, Option<&'a Relation>) {
    if task.delta_atom == Some(step.atom) {
        (delta_store, delta_db.relation_of(step.pred, step.arity))
    } else {
        (store, db.relation_of(step.pred, step.arity))
    }
}

pub(crate) struct TaskOutput {
    pub(crate) derived: Vec<GroundAtom>,
    pub(crate) probes: u64,
    pub(crate) matches: u64,
    /// Outer rows pushed through the batched gather → probe → verify →
    /// emit pipeline (kernel tasks only).
    pub(crate) batch_rows: u64,
    /// Probe keys dropped because a constant was absent from the target
    /// column's dictionary — joins answered without touching any row.
    pub(crate) dict_filtered: u64,
    /// Key blocks hashed through the lane-unrolled batch path.
    pub(crate) simd_blocks: u64,
    /// Delta tasks whose gathered key blocks were replayed from the
    /// round's batch cache instead of re-gathered.
    pub(crate) batch_reuse: u64,
    /// Drop head tuples already present in the database before allocating
    /// them. Valid for committing rounds (the commit would discard them
    /// anyway); the DRed overdeletion sweep must keep them.
    pub(crate) filter_known: bool,
    /// Head tuples already handled by this output (queued or known-old),
    /// per head predicate: set-semantics dedup before allocation, itself
    /// arena-backed so a repeated head costs a hash probe, not a `Box`.
    seen: HashMap<Pred, Relation>,
    /// Per-depth probe-key scratch (translated codes; no per-probe
    /// allocation).
    keys: Vec<Vec<u32>>,
    /// Ground-tuple scratch for negated-atom membership checks.
    neg_buf: Vec<Const>,
    pub(crate) head_buf: Vec<Const>,
}

impl TaskOutput {
    fn new(filter_known: bool) -> TaskOutput {
        TaskOutput {
            derived: Vec::new(),
            probes: 0,
            matches: 0,
            batch_rows: 0,
            dict_filtered: 0,
            simd_blocks: 0,
            batch_reuse: 0,
            filter_known,
            seen: HashMap::new(),
            keys: Vec::new(),
            neg_buf: Vec::new(),
            head_buf: Vec::new(),
        }
    }

    /// Account one complete body match whose head tuple sits in
    /// `self.head_buf`, dedup it, and queue it if new. Shared by the
    /// interpreter leaf and every specialized kernel, so `matches` and the
    /// emitted tuple set are executor-invariant by construction.
    ///
    /// Dedup before allocating: bloated programs re-derive the same head
    /// many times per round, and the commit step would drop the duplicates
    /// anyway. Known-old tuples are memoized into `seen` so repeats cost
    /// one hash probe, not a database lookup — and `seen` is an arena, so
    /// neither path allocates a per-tuple `Box`.
    pub(crate) fn emit_head(&mut self, head_pred: Pred, db: &Database) {
        self.matches += 1;
        let head_arity = self.head_buf.len();
        let seen = self
            .seen
            .entry(head_pred)
            .or_insert_with(|| Relation::new(head_arity));
        if seen.contains(&self.head_buf) {
            return;
        }
        seen.insert(&self.head_buf);
        if self.filter_known && db.contains_tuple(head_pred, &self.head_buf) {
            return;
        }
        self.derived.push(GroundAtom {
            pred: head_pred,
            tuple: self.head_buf.as_slice().into(),
        });
    }
}

#[allow(clippy::too_many_arguments)]
fn run_task(
    script: &JoinScript,
    executor: &Executor,
    task: Task,
    store: &IndexStore,
    delta_store: &IndexStore,
    db: &Database,
    delta_db: &Database,
    cache: &kernels::BatchCache,
    out: &mut TaskOutput,
) {
    // Kernels return `false` for shapes beyond their monomorphized tiers
    // (debug-asserted — `specialize` shouldn't pick them); fall through to
    // the interpreter instead of panicking.
    let handled = match executor {
        Executor::Scan => {
            kernels::run_scan(script, task, store, delta_store, db, delta_db, out);
            true
        }
        Executor::HashJoin { width } => kernels::run_hash_join(
            script,
            *width,
            task,
            store,
            delta_store,
            db,
            delta_db,
            cache,
            out,
        ),
        Executor::Pipeline { .. } => {
            kernels::run_pipeline(script, task, store, delta_store, db, delta_db, cache, out)
        }
        Executor::Interpreted => false,
    };
    if !handled {
        if out.keys.len() < script.steps.len() {
            out.keys.resize_with(script.steps.len(), Vec::new);
        }
        let mut assignment: Vec<Option<Const>> = vec![None; script.num_vars];
        exec(
            script,
            0,
            task,
            store,
            delta_store,
            db,
            delta_db,
            &mut assignment,
            out,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn exec(
    script: &JoinScript,
    depth: usize,
    task: Task,
    store: &IndexStore,
    delta_store: &IndexStore,
    db: &Database,
    delta_db: &Database,
    assignment: &mut Vec<Option<Const>>,
    out: &mut TaskOutput,
) {
    let Some(step) = script.steps.get(depth) else {
        out.head_buf.clear();
        for s in &script.head {
            out.head_buf.push(s.value(assignment));
        }
        out.emit_head(script.head_pred, db);
        return;
    };

    if step.negated {
        out.probes += 1;
        let absent = {
            let key = &mut out.neg_buf;
            key.clear();
            key.extend(step.key.iter().map(|s| s.value(assignment)));
            !db.contains_tuple(step.pred, key)
        };
        if absent {
            exec(
                script,
                depth + 1,
                task,
                store,
                delta_store,
                db,
                delta_db,
                assignment,
                out,
            );
        }
        return;
    }

    out.probes += 1;
    let (source, rel) = step_source(step, task, store, delta_store, db, delta_db);
    let Some(rel) = rel else {
        return; // no rows at this predicate/arity — the join is empty here
    };
    // Translate the probe key into the target relation's code space and
    // fold the hash as we go. A constant absent from a column's dictionary
    // matches no row: the probe is answered from the dictionary alone.
    let mut key_codes = std::mem::take(&mut out.keys[depth]);
    key_codes.clear();
    let mut hash = hash_codes_seed(step.key.len());
    let mut present = true;
    for (&pos, src) in step.positions.iter().zip(&step.key) {
        match rel.lookup_code(pos, src.value(assignment)) {
            Some(code) => {
                key_codes.push(code);
                hash = hash_codes_fold(hash, code);
            }
            None => {
                present = false;
                break;
            }
        }
    }
    let ids: &[u32] = if present {
        source.probe(step.pred, step.arity, &step.positions, hash)
    } else {
        out.dict_filtered += 1;
        &[]
    };
    // Sharding applies to the first step only: each shard owns a strided
    // slice of the depth-0 candidates and the rest of the join is common.
    let (skip, stride) = if depth == 0 {
        (task.offset, task.stride)
    } else {
        (0, 1)
    };
    for &id in ids.iter().skip(skip).step_by(stride.max(1)) {
        // The postings list is keyed by hash; verify the candidate's code
        // projection against the translated key (collision safety, one
        // integer compare per bound column).
        if !step
            .positions
            .iter()
            .zip(&key_codes)
            .all(|(&pos, &code)| rel.code_at(pos, id) == code)
        {
            continue;
        }
        let t = rel.row(id);
        for &(pos, v) in &step.bind {
            assignment[v] = Some(t[pos]);
        }
        if step
            .check
            .iter()
            .all(|&(pos, v)| assignment[v] == Some(t[pos]))
        {
            exec(
                script,
                depth + 1,
                task,
                store,
                delta_store,
                db,
                delta_db,
                assignment,
                out,
            );
        }
        for &(_, v) in &step.bind {
            assignment[v] = None;
        }
    }
    out.keys[depth] = key_codes;
}

/// A persistent evaluation context: the program's compiled rule plans, the
/// growing database, incrementally-maintained indexes over it, and (when
/// parallel) a lazily-spawned worker pool.
///
/// Constructed from a starting database, driven to fixpoint by the
/// evaluators in [`crate::seminaive`] / [`crate::stratified`] /
/// [`crate::scc_eval`] / [`crate::incremental`], and consumed with
/// [`EvalContext::into_database`].
pub struct EvalContext {
    plans: Arc<Vec<RulePlan>>,
    db: Arc<Database>,
    store: Arc<IndexStore>,
    threads: usize,
    specialize: bool,
    pipeline: bool,
    batch_cache: Arc<kernels::BatchCache>,
    pool: Option<ThreadPool>,
    stats: Stats,
}

impl std::fmt::Debug for EvalContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalContext")
            .field("rules", &self.plans.len())
            .field("db_atoms", &self.db.len())
            .field("threads", &self.threads)
            .field("specialize", &self.specialize)
            .field("pipeline", &self.pipeline)
            .field("stats", &self.stats)
            .finish()
    }
}

const CONST_BYTES: u64 = std::mem::size_of::<Const>() as u64;

impl EvalContext {
    /// Compile `program` and take ownership of `input` as the starting
    /// database.
    pub fn new(program: &Program, input: Database, opts: EvalOptions) -> EvalContext {
        EvalContext::with_plans(
            Arc::new(program.rules.iter().map(RulePlan::compile).collect()),
            input,
            opts,
        )
    }

    pub(crate) fn with_plans(
        plans: Arc<Vec<RulePlan>>,
        input: Database,
        opts: EvalOptions,
    ) -> EvalContext {
        let mut stats = Stats::default();
        // Seed the allocation counters with the rows the context starts
        // from, so `tuples_allocated` reflects everything resident in the
        // arenas, not just rows derived later.
        for pred in input.predicates() {
            for rel in input.relations_of(pred) {
                stats.tuples_allocated += rel.len() as u64;
                stats.arena_bytes += rel.len() as u64 * rel.arity() as u64 * CONST_BYTES;
            }
        }
        EvalContext {
            plans,
            db: Arc::new(input),
            store: Arc::new(IndexStore::default()),
            threads: opts.threads.max(1),
            specialize: opts.specialize,
            pipeline: opts.pipeline,
            batch_cache: Arc::new(kernels::BatchCache::default()),
            pool: None,
            stats,
        }
    }

    /// A cheap handle sharing this context's database and indexes
    /// copy-on-write (used by [`crate::Materialized`]'s `Clone`). The fork
    /// starts with no worker pool; counters carry over.
    pub(crate) fn fork(&self) -> EvalContext {
        EvalContext {
            plans: Arc::clone(&self.plans),
            db: Arc::clone(&self.db),
            store: Arc::clone(&self.store),
            threads: self.threads,
            specialize: self.specialize,
            pipeline: self.pipeline,
            // A fork evaluates its own rounds; sharing cached delta batches
            // across contexts would mix generations, so start fresh.
            batch_cache: Arc::new(kernels::BatchCache::default()),
            pool: None,
            stats: self.stats,
        }
    }

    /// The current database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// A shareable snapshot of the current database.
    pub(crate) fn database_arc(&self) -> Arc<Database> {
        Arc::clone(&self.db)
    }

    /// Work counters accumulated over the context's whole life.
    pub fn stats(&self) -> Stats {
        self.stats
    }

    /// The worker-thread knob this context runs with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Fold externally-measured work (e.g. rederivation scans) into the
    /// context counters.
    pub(crate) fn record(&mut self, stats: Stats) {
        self.stats += stats;
    }

    /// Consume the context, returning the database.
    pub fn into_database(self) -> Database {
        // Drop the pool first so no worker can still hold a db Arc.
        drop(self.pool);
        Arc::try_unwrap(self.db).unwrap_or_else(|arc| (*arc).clone())
    }

    /// Insert one atom, keeping the live indexes synchronized. Returns
    /// whether it was new. (Does not count as a derivation — used for
    /// externally asserted facts.)
    pub(crate) fn add_fact(&mut self, atom: GroundAtom) -> bool {
        let arity = atom.tuple.len();
        let Some(id) = Arc::make_mut(&mut self.db).insert_row_id(atom.pred, &atom.tuple) else {
            return false;
        };
        self.stats.tuples_allocated += 1;
        self.stats.arena_bytes += arity as u64 * CONST_BYTES;
        self.stats.index_appends +=
            Arc::make_mut(&mut self.store).absorb(&self.db, &[(atom.pred, arity, id)]);
        true
    }

    /// Remove atoms (non-monotone): the indexes are conservatively
    /// invalidated (row-ids are not stable across removals) and re-fill
    /// lazily from the shrunken database.
    pub(crate) fn remove_atoms(&mut self, atoms: &Database) {
        let db = Arc::make_mut(&mut self.db);
        for atom in atoms.iter() {
            db.remove(&atom);
        }
        Arc::make_mut(&mut self.store).clear();
    }

    /// Round 1 of a (sub)fixpoint: evaluate `rules` in full over the
    /// current database, commit the new atoms, and return them.
    pub(crate) fn full_round(&mut self, rules: &[usize]) -> Database {
        let derived = self.run_round(rules, None, &|_| true, true);
        self.commit(derived)
    }

    /// A semi-naive delta round: evaluate `rules` with each body
    /// occurrence of an `eligible` predicate restricted (in turn) to
    /// `delta`, commit the new atoms, and return them as the next delta.
    pub(crate) fn delta_round(
        &mut self,
        rules: &[usize],
        delta: &Database,
        eligible: &dyn Fn(Pred) -> bool,
    ) -> Database {
        let derived = self.run_round(rules, Some(delta), eligible, true);
        self.commit(derived)
    }

    /// A delta round over a *frozen* database: derived heads are returned
    /// raw, nothing is committed (the DRed overdeletion sweep).
    pub(crate) fn sweep_round(
        &mut self,
        rules: &[usize],
        delta: &Database,
        eligible: &dyn Fn(Pred) -> bool,
    ) -> Vec<GroundAtom> {
        self.run_round(rules, Some(delta), eligible, false)
    }

    /// Insert `derived` atoms that are new, append their row-ids to the
    /// live indexes, and return them as a delta database.
    fn commit(&mut self, derived: Vec<GroundAtom>) -> Database {
        let mut fresh = Database::new();
        let mut fresh_ids: Vec<(Pred, usize, u32)> = Vec::new();
        {
            let db = Arc::make_mut(&mut self.db);
            for atom in derived {
                let arity = atom.tuple.len();
                if let Some(id) = db.insert_row_id(atom.pred, &atom.tuple) {
                    fresh_ids.push((atom.pred, arity, id));
                    fresh.insert(atom);
                    self.stats.derivations += 1;
                    self.stats.tuples_allocated += 1;
                    self.stats.arena_bytes += arity as u64 * CONST_BYTES;
                }
            }
        }
        if !fresh_ids.is_empty() {
            self.stats.index_appends += Arc::make_mut(&mut self.store).absorb(&self.db, &fresh_ids);
        }
        fresh
    }

    /// Evaluate one round of `rules` (full or delta-restricted) and return
    /// the derived head atoms (possibly with duplicates).
    fn run_round(
        &mut self,
        rules: &[usize],
        delta: Option<&Database>,
        eligible: &dyn Fn(Pred) -> bool,
        filter_known: bool,
    ) -> Vec<GroundAtom> {
        self.stats.iterations += 1;

        // Compile the scripts and lower each to its executor (specialized
        // kernel or the interpreter fallback). Full rounds get one greedy
        // script per rule; delta rounds get one script per (rule, delta
        // position), seeded so the delta atom drives the join — the delta
        // is the small side, and a persistent-relation-first order would
        // rescan that full relation once per delta position per round.
        let mut scripts: Vec<JoinScript> = Vec::new();
        let mut items: Vec<(usize, Option<usize>)> = Vec::new();
        for &ri in rules {
            let plan = &self.plans[ri];
            match delta {
                None => {
                    let order = plan.greedy_order(&self.db);
                    scripts.push(compile_script(plan, &order));
                    items.push((scripts.len() - 1, None));
                }
                Some(d) => {
                    for (p, _) in plan.body.iter().enumerate().filter(|(_, a)| {
                        !a.negated && eligible(a.pred) && d.relation_len(a.pred) > 0
                    }) {
                        let order = plan.greedy_order_seeded(&self.db, Some(p));
                        scripts.push(compile_script(plan, &order));
                        items.push((scripts.len() - 1, Some(p)));
                    }
                }
            }
        }
        if items.is_empty() {
            return Vec::new();
        }
        let executors: Vec<Executor> = scripts
            .iter()
            .map(|s| kernels::specialize(s, self.specialize, self.pipeline))
            .collect();

        // Every round invalidates the previous round's cached delta-side
        // gather batches: the delta changed, so their keys can never match
        // again. Bumping the generation (rather than trusting callers)
        // keeps stale reuse structurally impossible.
        self.batch_cache.begin_round();

        // Ensure every index the scripts will probe before going read-only;
        // on steady-state rounds nothing is missing and this is a no-op.
        {
            let store = Arc::make_mut(&mut self.store);
            for script in &scripts {
                for step in &script.steps {
                    if !step.negated
                        && store.ensure(&self.db, step.pred, step.arity, &step.positions)
                    {
                        self.stats.index_builds += 1;
                    }
                }
            }
        }
        // Per-round delta-side indexes (ephemeral; not counted as builds).
        // The delta database itself is cloned into an Arc — relations are
        // Arc-shared, so this is a handful of refcount bumps — because the
        // row-ids in the delta store must resolve against it on workers.
        let delta_db: Arc<Database> = Arc::new(delta.cloned().unwrap_or_default());
        let mut delta_store = IndexStore::default();
        for &(s, pos) in &items {
            if let Some(p) = pos {
                let step = scripts[s]
                    .steps
                    .iter()
                    .find(|st| st.atom == p)
                    .expect("delta atom present in its own script");
                delta_store.ensure(&delta_db, step.pred, step.arity, &step.positions);
            }
        }

        // Shard items across workers by striding the first join step, so a
        // round with fewer items than workers still saturates the pool.
        let mut tasks: Vec<Task> = Vec::new();
        let target = self.threads * 2;
        for &(s, pos) in &items {
            let shardable = self.threads > 1
                && items.len() < target
                && scripts[s].steps.first().is_some_and(|st| !st.negated);
            let shards = if shardable {
                target.div_ceil(items.len())
            } else {
                1
            };
            tasks.extend((0..shards).map(|k| Task {
                script: s,
                delta_atom: pos,
                offset: k,
                stride: shards,
            }));
        }
        self.stats.specialized_tasks += tasks
            .iter()
            .filter(|t| executors[t.script].is_specialized())
            .count() as u64;
        self.stats.pipelined_tasks += tasks
            .iter()
            .filter(|t| executors[t.script].is_pipelined())
            .count() as u64;

        let mut out = TaskOutput::new(filter_known);
        if self.threads > 1 && tasks.len() > 1 {
            self.stats.parallel_tasks += tasks.len() as u64;
            let pool = {
                let threads = self.threads;
                self.pool.get_or_insert_with(|| ThreadPool::new(threads))
            };
            let compiled = Arc::new((scripts, executors));
            let delta_store = Arc::new(delta_store);
            let expected = tasks.len();
            let (tx, rx) = mpsc::channel::<TaskOutput>();
            for task in tasks {
                let tx = tx.clone();
                let compiled = Arc::clone(&compiled);
                let store = Arc::clone(&self.store);
                let delta_store = Arc::clone(&delta_store);
                let db = Arc::clone(&self.db);
                let delta_db = Arc::clone(&delta_db);
                let cache = Arc::clone(&self.batch_cache);
                pool.execute(move || {
                    let mut out = TaskOutput::new(filter_known);
                    let (scripts, executors) = &*compiled;
                    run_task(
                        &scripts[task.script],
                        &executors[task.script],
                        task,
                        &store,
                        &delta_store,
                        &db,
                        &delta_db,
                        &cache,
                        &mut out,
                    );
                    // Release the shared snapshots before reporting, so the
                    // main thread's next copy-on-write round sees a unique
                    // Arc and mutates in place.
                    drop(compiled);
                    drop(store);
                    drop(delta_store);
                    drop(db);
                    drop(delta_db);
                    drop(cache);
                    let _ = tx.send(out);
                });
            }
            drop(tx);
            let mut received = 0;
            while let Ok(part) = rx.recv() {
                received += 1;
                out.derived.extend(part.derived);
                out.probes += part.probes;
                out.matches += part.matches;
                out.batch_rows += part.batch_rows;
                out.dict_filtered += part.dict_filtered;
                out.simd_blocks += part.simd_blocks;
                out.batch_reuse += part.batch_reuse;
            }
            assert_eq!(
                received, expected,
                "a parallel evaluation worker panicked; result would be incomplete"
            );
        } else {
            for task in tasks {
                run_task(
                    &scripts[task.script],
                    &executors[task.script],
                    task,
                    &self.store,
                    &delta_store,
                    &self.db,
                    &delta_db,
                    &self.batch_cache,
                    &mut out,
                );
            }
        }
        self.stats.probes += out.probes;
        self.stats.matches += out.matches;
        self.stats.batch_probe_rows += out.batch_rows;
        self.stats.dict_filtered_probes += out.dict_filtered;
        self.stats.simd_hash_blocks += out.simd_blocks;
        self.stats.batch_reuse_hits += out.batch_reuse;
        out.derived
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::{parse_database, parse_program};

    fn tc() -> Program {
        parse_program("g(X, Z) :- a(X, Z). g(X, Z) :- g(X, Y), g(Y, Z).").unwrap()
    }

    fn saturate(cx: &mut EvalContext, rules: &[usize]) {
        let mut delta = cx.full_round(rules);
        while !delta.is_empty() {
            delta = cx.delta_round(rules, &delta, &|_| true);
        }
    }

    #[test]
    fn context_fixpoint_matches_naive() {
        let p = tc();
        let edb = parse_database("a(1,2). a(2,3). a(3,4).").unwrap();
        let mut cx = EvalContext::new(&p, edb.clone(), EvalOptions::sequential());
        saturate(&mut cx, &[0, 1]);
        assert_eq!(cx.into_database(), crate::naive::evaluate(&p, &edb));
    }

    #[test]
    fn indexes_are_built_once_and_appended_after() {
        let p = tc();
        let mut facts = String::new();
        for i in 0..40 {
            facts.push_str(&format!("a({}, {}).", i, i + 1));
        }
        let edb = parse_database(&facts).unwrap();
        let mut cx = EvalContext::new(&p, edb, EvalOptions::sequential());
        saturate(&mut cx, &[0, 1]);
        let stats = cx.stats();
        // Long chain ⇒ many rounds; incremental indexes ⇒ builds stay a
        // small per-pattern constant while appends do the maintenance.
        assert!(stats.iterations > 5, "chain forces many rounds");
        assert!(
            stats.index_builds <= 6,
            "per-pattern, not per-round: {} builds over {} rounds",
            stats.index_builds,
            stats.iterations
        );
        assert!(stats.index_appends > stats.index_builds);
    }

    #[test]
    fn parallel_rounds_are_tuple_identical() {
        let p = tc();
        let mut facts = String::new();
        for i in 0..24 {
            facts.push_str(&format!("a({}, {}).", i, i + 1));
            facts.push_str(&format!("a({}, {}).", i + 1, i));
        }
        let edb = parse_database(&facts).unwrap();
        let mut seq = EvalContext::new(&p, edb.clone(), EvalOptions::sequential());
        saturate(&mut seq, &[0, 1]);
        for threads in [2usize, 4, 8] {
            let mut par = EvalContext::new(&p, edb.clone(), EvalOptions::with_threads(threads));
            saturate(&mut par, &[0, 1]);
            assert!(par.stats().parallel_tasks > 0, "pool actually used");
            // Logical work is partition-invariant.
            assert_eq!(par.stats().matches, seq.stats().matches);
            assert_eq!(par.stats().derivations, seq.stats().derivations);
            assert_eq!(par.stats().tuples_allocated, seq.stats().tuples_allocated);
            assert_eq!(par.into_database(), *seq.database());
        }
    }

    /// The specialized kernels and the interpreter are exchangeable: same
    /// database, same logical work, at any thread count.
    #[test]
    fn specialized_matches_interpreter() {
        // One scan rule (with a repeated variable), one 2-atom join rule
        // (kernel tier), one 3-atom rule (pipeline tier), plus a
        // constant key that exercises the dictionary filter.
        let p = parse_program(
            "loop(X) :- a(X, X).\
             g(X, Z) :- a(X, Y), a(Y, Z).\
             h(X, W) :- a(X, Y), a(Y, Z), a(Z, W).\
             pin(X) :- a(7, X).",
        )
        .unwrap();
        let mut facts = String::from("a(5,5). a(7,9).");
        for i in 0..30 {
            facts.push_str(&format!("a({}, {}).", i, (i * 5 + 2) % 30));
        }
        let edb = parse_database(&facts).unwrap();
        let rules: Vec<usize> = (0..p.rules.len()).collect();
        let mut spec = EvalContext::new(&p, edb.clone(), EvalOptions::sequential());
        saturate(&mut spec, &rules);
        let mut interp = EvalContext::new(&p, edb.clone(), EvalOptions::interpreted());
        saturate(&mut interp, &rules);
        assert!(spec.stats().specialized_tasks > 0, "kernels actually ran");
        assert!(
            spec.stats().pipelined_tasks > 0,
            "the 3-atom rule takes the pipeline tier"
        );
        assert!(
            spec.stats().simd_hash_blocks > 0,
            "batched key hashing actually ran"
        );
        assert_eq!(interp.stats().specialized_tasks, 0, "reference stays pure");
        assert_eq!(interp.stats().pipelined_tasks, 0);
        assert_eq!(spec.stats().matches, interp.stats().matches);
        assert_eq!(spec.stats().derivations, interp.stats().derivations);
        assert_eq!(spec.stats().probes, interp.stats().probes);
        assert_eq!(*spec.database(), *interp.database());
        // And the parallel kernel tier agrees too.
        let mut par = EvalContext::new(&p, edb, EvalOptions::with_threads(4));
        saturate(&mut par, &rules);
        assert_eq!(par.stats().matches, interp.stats().matches);
        assert_eq!(*par.database(), *interp.database());
    }

    /// Keys wider than the monomorphized tiers (K > 8) must lower to the
    /// interpreter instead of panicking — this join projects a 9-column key.
    #[test]
    fn nine_column_keys_fall_back_gracefully() {
        let p =
            parse_program("j(X) :- p(A, B, C, D, E, F, G, H, I, X), q(A, B, C, D, E, F, G, H, I).")
                .unwrap();
        let mut facts = String::new();
        for i in 0..12 {
            facts.push_str(&format!(
                "p({0}, {1}, {2}, {0}, {1}, {2}, {0}, {1}, {2}, {3}).",
                i,
                i + 1,
                i + 2,
                i * 10
            ));
            if i % 2 == 0 {
                facts.push_str(&format!(
                    "q({0}, {1}, {2}, {0}, {1}, {2}, {0}, {1}, {2}).",
                    i,
                    i + 1,
                    i + 2
                ));
            }
        }
        let edb = parse_database(&facts).unwrap();
        let mut spec = EvalContext::new(&p, edb.clone(), EvalOptions::sequential());
        saturate(&mut spec, &[0]);
        let mut interp = EvalContext::new(&p, edb, EvalOptions::interpreted());
        saturate(&mut interp, &[0]);
        // The wide key disqualifies specialization entirely, so both runs
        // take the interpreter and agree on everything.
        assert_eq!(spec.stats().specialized_tasks, 0, "9-wide key not tiered");
        assert_eq!(spec.stats().matches, interp.stats().matches);
        assert_eq!(spec.stats().derivations, interp.stats().derivations);
        assert_eq!(*spec.database(), *interp.database());
        for i in [0i64, 2, 4, 6, 8, 10] {
            assert!(spec.database().contains(&datalog_ast::fact("j", [i * 10])));
        }
    }

    /// Two delta rules sharing a (delta predicate, join shape) must hit the
    /// cross-task gather cache, and reuse must not change the fixpoint.
    #[test]
    fn delta_batches_are_reused_across_tasks() {
        // Both recursive rules are driven by the same delta atom g with the
        // same join-key column, so the second task of each round replays
        // the first's gathered key batch. A 3-atom rule gives the pipeline
        // tier the same opportunity at stage 0.
        let p = parse_program(
            "g(X, Z) :- a(X, Z).\
             g(X, Z) :- g(X, Y), a(Y, Z).\
             h(X, Z) :- g(X, Y), b(Y, Z).\
             t(X, W) :- g(X, Y), a(Y, Z), b(Z, W).\
             u(X, W) :- g(X, Y), a(Y, Z), b(Z, W), a(W, W).",
        )
        .unwrap();
        let mut facts = String::new();
        for i in 0..40 {
            facts.push_str(&format!("a({}, {}).", i, (i + 1) % 40));
            facts.push_str(&format!("b({}, {}).", i, (i * 3 + 1) % 40));
        }
        let edb = parse_database(&facts).unwrap();
        let rules: Vec<usize> = (0..p.rules.len()).collect();
        let mut spec = EvalContext::new(&p, edb.clone(), EvalOptions::sequential());
        saturate(&mut spec, &rules);
        assert!(spec.stats().pipelined_tasks > 0, "3/4-atom rules pipelined");
        assert!(
            spec.stats().batch_reuse_hits > 0,
            "same-shape delta gathers dedup across tasks: {:?}",
            spec.stats()
        );
        let mut interp = EvalContext::new(&p, edb.clone(), EvalOptions::interpreted());
        saturate(&mut interp, &rules);
        assert_eq!(spec.stats().matches, interp.stats().matches);
        assert_eq!(spec.stats().probes, interp.stats().probes);
        assert_eq!(*spec.database(), *interp.database());
        // Reuse is thread-invariant: parallel runs agree tuple-for-tuple.
        let mut par = EvalContext::new(&p, edb, EvalOptions::with_threads(4));
        saturate(&mut par, &rules);
        assert_eq!(par.stats().matches, interp.stats().matches);
        assert_eq!(*par.database(), *interp.database());
    }

    #[test]
    fn add_fact_keeps_indexes_live() {
        let p = tc();
        let edb = parse_database("a(1,2).").unwrap();
        let mut cx = EvalContext::new(&p, edb, EvalOptions::sequential());
        saturate(&mut cx, &[0, 1]);
        let builds_before = cx.stats().index_builds;
        assert!(cx.add_fact(datalog_ast::fact("a", [2, 3])));
        let mut delta = Database::new();
        delta.insert(datalog_ast::fact("a", [2, 3]));
        while !delta.is_empty() {
            delta = cx.delta_round(&[0, 1], &delta, &|_| true);
        }
        assert_eq!(
            cx.stats().index_builds,
            builds_before,
            "insertions append, never rebuild"
        );
        assert!(cx.database().contains(&datalog_ast::fact("g", [1, 3])));
    }

    #[test]
    fn remove_atoms_invalidates_and_refills() {
        let p = tc();
        let edb = parse_database("a(1,2). a(2,3).").unwrap();
        let mut cx = EvalContext::new(&p, edb, EvalOptions::sequential());
        saturate(&mut cx, &[0, 1]);
        let mut gone = Database::new();
        gone.insert(datalog_ast::fact("g", [1, 3]));
        cx.remove_atoms(&gone);
        assert!(!cx.database().contains(&datalog_ast::fact("g", [1, 3])));
        // The next round rebuilds lazily and still computes correctly.
        let mut delta = Database::new();
        delta.insert(datalog_ast::fact("g", [2, 3]));
        while !delta.is_empty() {
            delta = cx.delta_round(&[0, 1], &delta, &|_| true);
        }
        assert!(cx.database().contains(&datalog_ast::fact("g", [1, 3])));
    }

    #[test]
    fn allocation_counters_track_arena_growth() {
        let p = tc();
        let edb = parse_database("a(1,2). a(2,3). a(3,4).").unwrap();
        let mut cx = EvalContext::new(&p, edb, EvalOptions::sequential());
        assert_eq!(cx.stats().tuples_allocated, 3, "seeded with the input");
        saturate(&mut cx, &[0, 1]);
        let stats = cx.stats();
        let final_len = cx.database().len() as u64;
        assert_eq!(
            stats.tuples_allocated, final_len,
            "monotone run: exactly one arena copy per resident tuple"
        );
        assert_eq!(
            stats.arena_bytes,
            final_len * 2 * CONST_BYTES,
            "all relations here are binary"
        );
    }
}
