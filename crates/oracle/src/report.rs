//! Fuzz-run reporting: counts per family, divergence details, JSON form.

use crate::oracles::{Divergence, Family};
use datalog_engine::Stats;
use datalog_json::Value;
use std::fmt;

/// One diverging case, with its reduction artifacts.
#[derive(Clone, Debug)]
pub struct Finding {
    pub seed: u64,
    pub family: Family,
    /// Kinds observed on the *original* case (stable ids like
    /// `query:magic`).
    pub kinds: Vec<String>,
    /// First divergence message on the original case.
    pub message: String,
    /// Canonical fixture text of the reduced case.
    pub fixture: String,
    /// Where the fixture was written, if a repro dir was configured.
    pub written_to: Option<String>,
}

/// The outcome of a whole fuzzing run.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Cases executed per family, in [`Family::ALL`] order.
    pub cases_run: Vec<(Family, u64)>,
    pub findings: Vec<Finding>,
    /// Wall-clock milliseconds spent.
    pub elapsed_ms: u64,
    /// True when the case budget was cut short by the time budget.
    pub budget_exhausted: bool,
    /// Engine work of the sequential reference evaluation, folded across
    /// every case run (see [`crate::oracles::reference_stats`]).
    pub eval: Stats,
}

impl FuzzReport {
    pub fn total_cases(&self) -> u64 {
        self.cases_run.iter().map(|&(_, n)| n).sum()
    }

    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    pub fn to_json(&self) -> Value {
        Value::object([
            (
                "cases_run",
                Value::Object(
                    self.cases_run
                        .iter()
                        .map(|&(f, n)| (f.name().to_string(), Value::Number(n as f64)))
                        .collect(),
                ),
            ),
            ("total_cases", Value::Number(self.total_cases() as f64)),
            ("elapsed_ms", Value::Number(self.elapsed_ms as f64)),
            ("budget_exhausted", Value::Bool(self.budget_exhausted)),
            (
                "eval",
                Value::object([
                    ("iterations", Value::from(self.eval.iterations)),
                    ("probes", Value::from(self.eval.probes)),
                    ("matches", Value::from(self.eval.matches)),
                    ("derivations", Value::from(self.eval.derivations)),
                    ("index_builds", Value::from(self.eval.index_builds)),
                    ("index_appends", Value::from(self.eval.index_appends)),
                    ("parallel_tasks", Value::from(self.eval.parallel_tasks)),
                    ("pipelined_tasks", Value::from(self.eval.pipelined_tasks)),
                    ("batch_reuse_hits", Value::from(self.eval.batch_reuse_hits)),
                    ("simd_hash_blocks", Value::from(self.eval.simd_hash_blocks)),
                    ("tuples_allocated", Value::from(self.eval.tuples_allocated)),
                    ("arena_bytes", Value::from(self.eval.arena_bytes)),
                ]),
            ),
            (
                "findings",
                Value::Array(
                    self.findings
                        .iter()
                        .map(|f| {
                            Value::object([
                                ("seed", Value::Number(f.seed as f64)),
                                ("family", Value::String(f.family.name().to_string())),
                                (
                                    "kinds",
                                    Value::Array(
                                        f.kinds.iter().map(|k| Value::String(k.clone())).collect(),
                                    ),
                                ),
                                ("message", Value::String(f.message.clone())),
                                ("fixture", Value::String(f.fixture.clone())),
                                (
                                    "written_to",
                                    match &f.written_to {
                                        Some(p) => Value::String(p.clone()),
                                        None => Value::Null,
                                    },
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl fmt::Display for FuzzReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ran {} case(s) in {} ms (",
            self.total_cases(),
            self.elapsed_ms
        )?;
        for (i, (family, n)) in self.cases_run.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{family}: {n}")?;
        }
        writeln!(f, ")")?;
        if self.budget_exhausted {
            writeln!(f, "time budget exhausted before the case budget")?;
        }
        writeln!(f, "reference eval: {}", self.eval)?;
        if self.findings.is_empty() {
            write!(f, "no divergences")?;
        } else {
            write!(f, "{} divergence(s):", self.findings.len())?;
            for finding in &self.findings {
                write!(
                    f,
                    "\n  seed {} [{}] {} — {}",
                    finding.seed,
                    finding.family,
                    finding.kinds.join(","),
                    finding.message
                )?;
                if let Some(path) = &finding.written_to {
                    write!(f, "\n    repro written to {path}")?;
                }
            }
        }
        Ok(())
    }
}

/// Build a [`Finding`] from the raw divergences of a case (deduplicated
/// kinds, first message).
pub(crate) fn finding_from(
    seed: u64,
    family: Family,
    divergences: &[Divergence],
    fixture: String,
) -> Finding {
    let mut kinds: Vec<String> = divergences.iter().map(|d| d.kind.clone()).collect();
    kinds.dedup();
    Finding {
        seed,
        family,
        kinds,
        message: divergences
            .first()
            .map(|d| d.message.clone())
            .unwrap_or_default(),
        fixture,
        written_to: None,
    }
}
