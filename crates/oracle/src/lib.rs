//! # datalog-oracle
//!
//! A seeded differential fuzzing subsystem for the `sagiv-datalog`
//! workspace, after Zhang et al., *"Finding Cross-rule Optimization Bugs in
//! Datalog Engines"* (2024): the repo computes the same answers many ways —
//! naive/semi-naive/SCC/stratified/parallel/sharded fixpoints, magic-sets
//! and QSQ query answering, incremental insert/DRed-remove maintenance,
//! §VII uniform-equivalence minimization, the service's subsumption-cached
//! point-query path, and racing clients against the concurrent service
//! registry — and precisely that redundancy is the test oracle.
//! Random workloads are generated from `datalog-generate`,
//! every computation path is cross-checked, and any disagreement is shrunk
//! by a delta-debugging reducer into a self-contained fixture that replays
//! as a regression test.
//!
//! * [`workload`] — seeded (program, database, queries, mutations) cases;
//! * [`oracles`] — the divergence checks (engine matrix, optimization
//!   soundness, incremental consistency, query-cache consistency);
//! * [`reduce`] — greedy delta-debugging reduction (rules → atoms →
//!   queries → mutations → facts → constant renumbering);
//! * [`fixture`] — the `.repro` file format under `tests/repros/`;
//! * [`report`] — aggregate results with JSON rendering for CI.
//!
//! Entry point: [`fuzz`] with a [`FuzzConfig`]; the `datalog fuzz` CLI
//! subcommand is a thin wrapper around it.

#![warn(rust_2018_idioms)]

pub mod fixture;
pub mod oracles;
pub mod reduce;
pub mod report;
pub mod workload;

pub use fixture::{Fixture, FixtureError};
pub use oracles::{check, filtered_fixpoint, Divergence, Family};
pub use reduce::reduce;
pub use report::{Finding, FuzzReport};
pub use workload::{Case, Mutation};

use std::time::Instant;

/// Configuration for a fuzzing run.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Base seed; case `i` runs on a seed derived from `seed` and `i`.
    pub seed: u64,
    /// Number of cases to attempt (round-robined across `families`).
    pub cases: u64,
    /// Hard wall-clock budget; the run stops early when exceeded.
    pub budget_ms: Option<u64>,
    /// Which oracle families to exercise.
    pub families: Vec<Family>,
    /// Reduce diverging cases to minimal fixtures (on by default; turning
    /// it off reports the raw generated case instead).
    pub reduce: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0,
            cases: 300,
            budget_ms: None,
            families: Family::ALL.to_vec(),
            reduce: true,
        }
    }
}

impl FuzzConfig {
    /// The CI smoke configuration: fixed seed, all families, ≥200 cases,
    /// and a hard time budget so a hang cannot stall the pipeline.
    pub fn smoke() -> FuzzConfig {
        FuzzConfig {
            seed: 0x0DA7_A106,
            cases: 240,
            budget_ms: Some(120_000),
            families: Family::ALL.to_vec(),
            reduce: true,
        }
    }
}

/// Derive the per-case seed: a SplitMix64-style mix of base seed and index,
/// so neighbouring indices produce uncorrelated workloads.
pub fn case_seed(base: u64, index: u64) -> u64 {
    let mut z = base.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Run the fuzzer. Deterministic for a fixed config (modulo `elapsed_ms`
/// and early stops under a wall-clock budget).
pub fn fuzz(config: &FuzzConfig) -> FuzzReport {
    let start = Instant::now();
    let mut report = FuzzReport {
        cases_run: config.families.iter().map(|&f| (f, 0)).collect(),
        ..FuzzReport::default()
    };
    if config.families.is_empty() {
        return report;
    }
    for i in 0..config.cases {
        if let Some(budget) = config.budget_ms {
            if start.elapsed().as_millis() as u64 >= budget {
                report.budget_exhausted = true;
                break;
            }
        }
        let family = config.families[(i % config.families.len() as u64) as usize];
        let seed = case_seed(config.seed, i);
        let case = workload::generate(seed, family);
        if let Some(slot) = report.cases_run.iter_mut().find(|(f, _)| *f == family) {
            slot.1 += 1;
        }
        report.eval += oracles::reference_stats(&case);
        let divergences = oracles::check(&case);
        if divergences.is_empty() {
            continue;
        }
        let reduced = if config.reduce {
            reduce::reduce(&case, &|c| !oracles::check(c).is_empty())
        } else {
            case.clone()
        };
        let kind = divergences
            .first()
            .map(|d| d.kind.clone())
            .unwrap_or_default();
        let fixture = fixture::Fixture::for_case(reduced, &kind).render();
        report
            .findings
            .push(report::finding_from(seed, family, &divergences, fixture));
    }
    report.elapsed_ms = start.elapsed().as_millis() as u64;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seed_spreads() {
        let a = case_seed(1, 0);
        let b = case_seed(1, 1);
        let c = case_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, case_seed(1, 0));
    }

    #[test]
    fn tiny_run_terminates() {
        let report = fuzz(&FuzzConfig {
            seed: 1,
            cases: 9,
            budget_ms: Some(60_000),
            families: Family::ALL.to_vec(),
            reduce: false,
        });
        assert_eq!(report.total_cases(), 9);
        assert_eq!(report.cases_run.len(), Family::ALL.len());
        // The reference evaluations' storage work is folded into the report.
        assert!(report.eval.tuples_allocated > 0);
        assert!(report.eval.arena_bytes > 0);
    }

    #[test]
    fn zero_budget_stops_immediately() {
        let report = fuzz(&FuzzConfig {
            budget_ms: Some(0),
            ..FuzzConfig::default()
        });
        assert_eq!(report.total_cases(), 0);
        assert!(report.budget_exhausted);
    }
}
