//! Fuzz-case generation: seeded (program, database, queries, mutations)
//! workloads.
//!
//! A [`Case`] carries everything any of the oracle families could need;
//! each family reads the parts relevant to it (the engine matrix uses
//! `program`/`db`/`queries`, the optimization oracle `program`/`db`, the
//! incremental oracle `program`/`db`/`mutations`, the query-cache
//! oracle all four — queries interleaved with mutations — and the
//! concurrent-service oracle races *interleaving-independent* mutations
//! from several client threads). Generation is
//! deterministic per `(seed, family)` — the same seed always reproduces the
//! same case, which is what makes a divergence report actionable.
//!
//! Databases are *IDB-seeded* with some probability: the paper's uniform
//! equivalence (§IV) quantifies over databases that may already contain
//! facts for intentional predicates, and several historical bugs (magic/QSQ
//! ignoring seeded IDB facts, DRed base-fact tracking) only surface there.

use crate::oracles::Family;
use datalog_ast::{Atom, Const, Database, GroundAtom, Pred, Program, Rule, Term, Var};
use datalog_generate::{
    inject, random_db, random_program, random_stratified_program, same_generation,
    transitive_closure, RandomProgramSpec, TcVariant,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// One batch of an incremental-maintenance interleaving.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Insert these facts (base EDB facts or seeded IDB facts).
    Insert(Vec<GroundAtom>),
    /// Remove these facts from the asserted base.
    Remove(Vec<GroundAtom>),
}

impl Mutation {
    pub fn facts(&self) -> &[GroundAtom] {
        match self {
            Mutation::Insert(fs) | Mutation::Remove(fs) => fs,
        }
    }

    pub fn facts_mut(&mut self) -> &mut Vec<GroundAtom> {
        match self {
            Mutation::Insert(fs) | Mutation::Remove(fs) => fs,
        }
    }

    pub fn is_insert(&self) -> bool {
        matches!(self, Mutation::Insert(_))
    }
}

/// A self-contained differential-testing case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Case {
    /// The oracle family this case exercises.
    pub family: Family,
    /// The seed it was generated from (0 for hand-written fixtures).
    pub seed: u64,
    pub program: Program,
    /// The initial database (may seed IDB predicates).
    pub db: Database,
    /// Adorned queries for the magic/QSQ differential (engine family).
    pub queries: Vec<Atom>,
    /// Insert/remove interleaving (incremental family).
    pub mutations: Vec<Mutation>,
}

/// All predicates of a program with their arities, EDB and IDB alike.
/// Arities are read off the rules, so they are consistent by construction.
pub(crate) fn pred_arities(program: &Program) -> Vec<(Pred, usize)> {
    let mut seen: BTreeSet<Pred> = BTreeSet::new();
    let mut out = Vec::new();
    let mut push = |p: Pred, arity: usize, seen: &mut BTreeSet<Pred>| {
        if seen.insert(p) {
            out.push((p, arity));
        }
    };
    for rule in &program.rules {
        push(rule.head.pred, rule.head.terms.len(), &mut seen);
        for lit in &rule.body {
            push(lit.atom.pred, lit.atom.terms.len(), &mut seen);
        }
    }
    out
}

/// Generate the case for `(seed, family)`.
pub fn generate(seed: u64, family: Family) -> Case {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut program = pick_program(&mut rng, family);
    if family == Family::ConcurrentService {
        // This family installs the program through the real text protocol,
        // so it must survive a render → parse round trip; redundancy
        // injection's reserved `$`-namespace variables are unparseable by
        // design and get plain source names here.
        program = unreserve_vars(&program);
    }
    let db = pick_db(&mut rng, &program);
    let wants_queries = matches!(
        family,
        Family::Engines | Family::QueryCache | Family::ConcurrentService | Family::Metamorphic
    );
    let queries = if wants_queries && program.is_positive() {
        pick_queries(&mut rng, &program, &db)
    } else {
        Vec::new()
    };
    let mutations = match family {
        Family::Incremental | Family::QueryCache => pick_mutations(&mut rng, &program, &db),
        Family::ConcurrentService => pick_service_mutations(&mut rng, &program, &db),
        _ => Vec::new(),
    };
    Case {
        family,
        seed,
        program,
        db,
        queries,
        mutations,
    }
}

fn pick_program(rng: &mut StdRng, family: Family) -> Program {
    // The engine matrix also exercises stratified negation; the other
    // families require positive programs (minimization, Materialized, the
    // top-down query engines, and the service's views are positive-only).
    let stratified_ok = family == Family::Engines;
    loop {
        let p = match rng.gen_range(0..10u32) {
            0 => transitive_closure(TcVariant::Doubling),
            1 => transitive_closure(TcVariant::LeftLinear),
            2 => transitive_closure(TcVariant::RightLinear),
            3 => transitive_closure(TcVariant::GuardedDoubling),
            4 => same_generation(),
            5 if stratified_ok => random_stratified_program(
                rng.gen_range(2..4),
                rng.gen_range(1..3),
                rng.gen::<u64>(),
            ),
            // Redundancy-injected variants of the named programs: more
            // rules, unfoldings, specialized instances.
            6 => {
                let base = transitive_closure(TcVariant::Doubling);
                inject(&base, rng.gen_range(1..4), rng.gen::<u64>()).0
            }
            _ => {
                let spec = RandomProgramSpec {
                    edb: vec![("a".into(), 2), ("b".into(), 2), ("c".into(), 1)],
                    idb: vec![("p".into(), 2), ("q".into(), 1)],
                    rules: rng.gen_range(2..7),
                    body_len: (1, 3),
                    var_pool: rng.gen_range(3..6),
                };
                random_program(&spec, rng.gen::<u64>())
            }
        };
        if p.is_positive() || stratified_ok {
            return p;
        }
    }
}

fn pick_db(rng: &mut StdRng, program: &Program) -> Database {
    let domain: i64 = rng.gen_range(3..7);
    let idb = program.intentional();
    let mut db = Database::new();
    for (pred, arity) in pred_arities(program) {
        // EDB predicates always get tuples; IDB predicates are seeded with
        // probability 1/2 (the uniform-equivalence regime), with fewer
        // tuples so derived closure stays small.
        let tuples = if idb.contains(&pred) {
            if rng.gen_bool(0.5) {
                rng.gen_range(1..3)
            } else {
                0
            }
        } else {
            rng.gen_range(1..8)
        };
        for _ in 0..tuples {
            let tuple: Vec<Const> = (0..arity)
                .map(|_| Const::Int(rng.gen_range(0..domain)))
                .collect();
            db.insert(GroundAtom {
                pred,
                tuple: tuple.into(),
            });
        }
    }
    db
}

/// Random adorned queries: each position independently a constant (drawn
/// from the database's active domain), a fresh variable, or a repeat of an
/// earlier variable — covering bound/free mixes and repeated variables.
fn pick_queries(rng: &mut StdRng, program: &Program, db: &Database) -> Vec<Atom> {
    let mut domain: Vec<Const> = db.active_domain().into_iter().collect();
    if domain.is_empty() {
        domain.push(Const::Int(0));
    }
    // Mostly IDB predicates; occasionally an EDB predicate (the fixpoint
    // contains the input, so EDB queries must work too).
    let idb = program.intentional();
    let all = pred_arities(program);
    let mut preferred: Vec<(Pred, usize)> = all
        .iter()
        .copied()
        .filter(|(p, _)| idb.contains(p))
        .collect();
    if preferred.is_empty() {
        preferred = all.clone();
    }
    let n = rng.gen_range(1..4);
    let mut queries = Vec::with_capacity(n);
    for _ in 0..n {
        let (pred, arity) = if rng.gen_bool(0.85) {
            preferred[rng.gen_range(0..preferred.len())]
        } else {
            all[rng.gen_range(0..all.len())]
        };
        let mut vars: Vec<Var> = Vec::new();
        let terms: Vec<Term> = (0..arity)
            .map(|i| match rng.gen_range(0..3u32) {
                0 => Term::Const(domain[rng.gen_range(0..domain.len())]),
                1 if !vars.is_empty() => Term::Var(vars[rng.gen_range(0..vars.len())]),
                _ => {
                    let v = Var::new(&format!("Q{i}"));
                    vars.push(v);
                    Term::Var(v)
                }
            })
            .collect();
        queries.push(Atom { pred, terms });
    }
    queries
}

fn pick_mutations(rng: &mut StdRng, program: &Program, db: &Database) -> Vec<Mutation> {
    let domain: i64 = 7;
    let idb = program.intentional();
    let arities = pred_arities(program);
    let existing: Vec<GroundAtom> = db.iter().collect();
    let n = rng.gen_range(2..6);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let batch_len = rng.gen_range(1..4);
        if rng.gen_bool(0.5) {
            let mut facts = Vec::with_capacity(batch_len);
            for _ in 0..batch_len {
                let (pred, arity) = arities[rng.gen_range(0..arities.len())];
                // Seed IDB inserts occasionally — they exercise the DRed
                // base-fact bookkeeping.
                if idb.contains(&pred) && rng.gen_bool(0.6) {
                    continue;
                }
                let tuple: Vec<Const> = (0..arity)
                    .map(|_| Const::Int(rng.gen_range(0..domain)))
                    .collect();
                facts.push(GroundAtom {
                    pred,
                    tuple: tuple.into(),
                });
            }
            if !facts.is_empty() {
                out.push(Mutation::Insert(facts));
            }
        } else if !existing.is_empty() {
            // Removals target facts likely to be present: draw from the
            // initial database (plus an occasional miss, which must no-op).
            let mut facts = Vec::with_capacity(batch_len);
            for _ in 0..batch_len {
                if rng.gen_bool(0.85) {
                    facts.push(existing[rng.gen_range(0..existing.len())].clone());
                } else {
                    let (pred, arity) = arities[rng.gen_range(0..arities.len())];
                    let tuple: Vec<Const> = (0..arity)
                        .map(|_| Const::Int(rng.gen_range(0..domain)))
                        .collect();
                    facts.push(GroundAtom {
                        pred,
                        tuple: tuple.into(),
                    });
                }
            }
            out.push(Mutation::Remove(facts));
        }
    }
    out
}

/// Rename reserved `$`-namespace variables (as introduced by redundancy
/// injection) to plain parseable names, per rule — Datalog variables are
/// rule-scoped, so a fresh `UV{n}` name per rule preserves the semantics
/// as long as it collides with nothing else in that rule.
fn unreserve_vars(program: &Program) -> Program {
    let rename_rule = |rule: &Rule| -> Rule {
        let vars = rule.vars();
        let taken: BTreeSet<String> = vars.iter().map(|v| v.name()).collect();
        let mut next = 0usize;
        let mut map: Vec<(Var, Var)> = Vec::new();
        for v in &vars {
            if !v.name().contains('$') {
                continue;
            }
            let fresh = loop {
                let candidate = format!("UV{next}");
                next += 1;
                if !taken.contains(candidate.as_str()) {
                    break Var::new(&candidate);
                }
            };
            map.push((*v, fresh));
        }
        if map.is_empty() {
            return rule.clone();
        }
        let rename_atom = |atom: &Atom| Atom {
            pred: atom.pred,
            terms: atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => Term::Var(
                        map.iter()
                            .find(|(from, _)| from == v)
                            .map(|(_, to)| *to)
                            .unwrap_or(*v),
                    ),
                    c => *c,
                })
                .collect(),
        };
        Rule {
            head: rename_atom(&rule.head),
            body: rule
                .body
                .iter()
                .map(|l| datalog_ast::Literal {
                    atom: rename_atom(&l.atom),
                    negated: l.negated,
                })
                .collect(),
            spans: None,
        }
    };
    Program {
        rules: program.rules.iter().map(rename_rule).collect(),
    }
}

/// Interleaving-independent service batches: racing client threads may
/// commit these in **any** order and must converge to the same final base.
/// That holds by construction — inserts draw fresh facts (constants ≥ 100,
/// disjoint from the initial domain, so no insert collides with a removal),
/// and removals draw facts from the initial database — making the expected
/// final base `initial ∪ inserts ∖ removals` regardless of schedule.
fn pick_service_mutations(rng: &mut StdRng, program: &Program, db: &Database) -> Vec<Mutation> {
    let arities = pred_arities(program);
    let existing: Vec<GroundAtom> = db.iter().collect();
    let n = rng.gen_range(4..9);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let batch_len = rng.gen_range(1..4);
        if rng.gen_bool(0.6) || existing.is_empty() {
            let facts: Vec<GroundAtom> = (0..batch_len)
                .map(|_| {
                    let (pred, arity) = arities[rng.gen_range(0..arities.len())];
                    let tuple: Vec<Const> = (0..arity)
                        .map(|_| Const::Int(rng.gen_range(100..112)))
                        .collect();
                    GroundAtom {
                        pred,
                        tuple: tuple.into(),
                    }
                })
                .collect();
            out.push(Mutation::Insert(facts));
        } else {
            // Duplicate targets across batches are fine: removal is
            // idempotent, so any schedule still ends at the same base.
            let facts: Vec<GroundAtom> = (0..batch_len)
                .map(|_| existing[rng.gen_range(0..existing.len())].clone())
                .collect();
            out.push(Mutation::Remove(facts));
        }
    }
    out
}

/// A generated random database in the `random_db` style, re-exported for
/// callers that want a quick EDB without building a whole case.
pub fn quick_db(preds: &[(&str, usize)], tuples_per: usize, domain: i64, seed: u64) -> Database {
    random_db(preds, tuples_per, domain, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for family in [Family::Engines, Family::Optimization, Family::Incremental] {
            for seed in 0..20 {
                assert_eq!(generate(seed, family), generate(seed, family));
            }
        }
    }

    #[test]
    fn engine_cases_have_queries_for_positive_programs() {
        let mut with_queries = 0;
        for seed in 0..40 {
            let c = generate(seed, Family::Engines);
            if c.program.is_positive() {
                assert!(!c.queries.is_empty(), "seed {seed}");
                with_queries += 1;
            }
        }
        assert!(with_queries > 10);
    }

    #[test]
    fn some_cases_seed_idb_facts() {
        let mut seeded = 0;
        for seed in 0..40 {
            let c = generate(seed, Family::Optimization);
            let idb = c.program.intentional();
            if c.db.iter().any(|g| idb.contains(&g.pred)) {
                seeded += 1;
            }
        }
        assert!(seeded > 5, "only {seeded}/40 cases seeded IDB facts");
    }

    #[test]
    fn incremental_cases_have_mutations() {
        let any = (0..20).any(|s| !generate(s, Family::Incremental).mutations.is_empty());
        assert!(any);
    }

    #[test]
    fn query_cache_cases_have_queries_and_mutations() {
        let mut with_both = 0;
        for seed in 0..40 {
            let c = generate(seed, Family::QueryCache);
            assert!(c.program.is_positive(), "seed {seed}");
            assert!(!c.queries.is_empty(), "seed {seed}");
            if !c.mutations.is_empty() {
                with_both += 1;
            }
        }
        assert!(with_both > 10, "only {with_both}/40 cases had mutations");
    }

    #[test]
    fn concurrent_service_cases_are_interleaving_independent() {
        for seed in 0..40 {
            let c = generate(seed, Family::ConcurrentService);
            assert!(c.program.is_positive(), "seed {seed}");
            let inserted: std::collections::BTreeSet<GroundAtom> = c
                .mutations
                .iter()
                .filter(|m| m.is_insert())
                .flat_map(|m| m.facts().iter().cloned())
                .collect();
            for m in c.mutations.iter().filter(|m| !m.is_insert()) {
                for f in m.facts() {
                    assert!(
                        !inserted.contains(f),
                        "seed {seed}: fact {f} both inserted and removed — the final \
                         base would depend on the interleaving"
                    );
                    assert!(
                        c.db.contains(f),
                        "seed {seed}: removal of a non-initial fact"
                    );
                }
            }
        }
    }

    #[test]
    fn engine_family_includes_stratified_negation() {
        let any = (0..80).any(|s| !generate(s, Family::Engines).program.is_positive());
        assert!(any, "no stratified-negation case in 80 seeds");
    }
}
