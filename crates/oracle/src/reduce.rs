//! Delta-debugging reduction of diverging cases.
//!
//! Given a case and a predicate "does this case still diverge?", the
//! reducer greedily shrinks the case while the predicate holds: whole
//! rules, then body atoms, then queries, mutation batches and their facts,
//! then database facts, and finally a constant-renumbering pass that maps
//! the surviving integer constants onto a dense `0..n` range. Passes repeat
//! until a full sweep removes nothing, so the result is 1-minimal with
//! respect to each pass's removal granularity.
//!
//! Every pass iterates in a content-determined order (vector order for
//! rules/atoms/queries/mutations, lexicographic rendering for database
//! facts, ascending numeric order for the constant map), so reduction is
//! deterministic for a given input case — reducing twice yields the same
//! case, byte-for-byte once rendered as a fixture.

use crate::workload::Case;
use datalog_ast::{Const, Database, GroundAtom, Program, Rule, Term};
use std::collections::BTreeSet;

/// Is the candidate still a failing (diverging) case?
pub type Check<'a> = dyn Fn(&Case) -> bool + 'a;

/// Shrink `case` while `still_fails` holds. `case` itself must satisfy the
/// predicate; the result is the smallest case the greedy passes reach.
pub fn reduce(case: &Case, still_fails: &Check<'_>) -> Case {
    debug_assert!(still_fails(case), "reduce() needs a failing case");
    let mut current = case.clone();
    loop {
        let mut changed = false;
        changed |= drop_rules(&mut current, still_fails);
        changed |= drop_body_atoms(&mut current, still_fails);
        changed |= drop_queries(&mut current, still_fails);
        changed |= drop_mutations(&mut current, still_fails);
        changed |= drop_db_facts(&mut current, still_fails);
        if !changed {
            break;
        }
    }
    // Cosmetic, run once at the end: dense-renumber the constants.
    renumber_constants(&mut current, still_fails);
    current
}

/// Try removing whole rules, one at a time, front to back.
fn drop_rules(case: &mut Case, still_fails: &Check<'_>) -> bool {
    let mut changed = false;
    let mut i = 0;
    while i < case.program.len() {
        let mut candidate = case.clone();
        candidate.program.rules.remove(i);
        if still_fails(&candidate) {
            *case = candidate;
            changed = true;
        } else {
            i += 1;
        }
    }
    changed
}

/// Try removing single body atoms. A removal that breaks validity (range
/// restriction, unsafe negation) simply fails the check — `oracles::check`
/// treats invalid programs as non-divergent.
fn drop_body_atoms(case: &mut Case, still_fails: &Check<'_>) -> bool {
    let mut changed = false;
    let mut r = 0;
    while r < case.program.len() {
        let mut a = 0;
        while a < case.program.rules[r].width() {
            let mut candidate = case.clone();
            candidate.program.rules[r].body.remove(a);
            if datalog_ast::validate(&candidate.program).is_ok() && still_fails(&candidate) {
                *case = candidate;
                changed = true;
            } else {
                a += 1;
            }
        }
        r += 1;
    }
    changed
}

fn drop_queries(case: &mut Case, still_fails: &Check<'_>) -> bool {
    let mut changed = false;
    let mut i = 0;
    while i < case.queries.len() {
        let mut candidate = case.clone();
        candidate.queries.remove(i);
        if still_fails(&candidate) {
            *case = candidate;
            changed = true;
        } else {
            i += 1;
        }
    }
    changed
}

/// Drop whole mutation batches, then individual facts within batches.
fn drop_mutations(case: &mut Case, still_fails: &Check<'_>) -> bool {
    let mut changed = false;
    let mut i = 0;
    while i < case.mutations.len() {
        let mut candidate = case.clone();
        candidate.mutations.remove(i);
        if still_fails(&candidate) {
            *case = candidate;
            changed = true;
        } else {
            i += 1;
        }
    }
    let mut b = 0;
    while b < case.mutations.len() {
        let mut f = 0;
        while f < case.mutations[b].facts().len() {
            let mut candidate = case.clone();
            candidate.mutations[b].facts_mut().remove(f);
            if !candidate.mutations[b].facts().is_empty() && still_fails(&candidate) {
                *case = candidate;
                changed = true;
            } else {
                f += 1;
            }
        }
        b += 1;
    }
    changed
}

/// Drop database facts one at a time, in lexicographic order of their
/// rendered form (the database's internal order depends on interning order,
/// which is process-run dependent — rendering is not).
fn drop_db_facts(case: &mut Case, still_fails: &Check<'_>) -> bool {
    let mut changed = false;
    let mut facts: Vec<GroundAtom> = case.db.iter().collect();
    facts.sort_by_key(|a| a.to_string());
    for fact in facts {
        let mut candidate = case.clone();
        candidate.db.remove(&fact);
        if still_fails(&candidate) {
            *case = candidate;
            changed = true;
        }
    }
    changed
}

/// Map the surviving integer constants (in ascending order) onto `0..n`.
/// Applied only if the renamed case still fails — renaming is a bijection
/// on the active domain, so for the engines/incremental oracles it always
/// preserves the divergence, but the check keeps the pass safe regardless.
fn renumber_constants(case: &mut Case, still_fails: &Check<'_>) {
    let mut ints: BTreeSet<i64> = BTreeSet::new();
    let mut note = |c: &Const| {
        if let Const::Int(i) = c {
            ints.insert(*i);
        }
    };
    for g in case.db.iter() {
        g.tuple.iter().for_each(&mut note);
    }
    for m in &case.mutations {
        for g in m.facts() {
            g.tuple.iter().for_each(&mut note);
        }
    }
    for q in &case.queries {
        for t in &q.terms {
            if let Term::Const(c) = t {
                note(c);
            }
        }
    }
    for rule in &case.program.rules {
        for t in rule
            .head
            .terms
            .iter()
            .chain(rule.body.iter().flat_map(|l| l.atom.terms.iter()))
        {
            if let Term::Const(c) = t {
                note(c);
            }
        }
    }
    let map: std::collections::BTreeMap<i64, i64> = ints
        .iter()
        .enumerate()
        .map(|(rank, &i)| (i, rank as i64))
        .collect();
    if map.iter().all(|(k, v)| k == v) {
        return; // already dense
    }
    let ren_const = |c: Const| match c {
        Const::Int(i) => Const::Int(map[&i]),
        other => other,
    };
    let ren_atom = |g: &GroundAtom| GroundAtom {
        pred: g.pred,
        tuple: g.tuple.iter().map(|&c| ren_const(c)).collect(),
    };
    let ren_term = |t: &Term| match t {
        Term::Const(c) => Term::Const(ren_const(*c)),
        v => *v,
    };

    let mut candidate = case.clone();
    candidate.db = case.db.iter().map(|g| ren_atom(&g)).collect::<Database>();
    for m in &mut candidate.mutations {
        let facts = m.facts_mut();
        *facts = facts.iter().map(ren_atom).collect();
    }
    for q in &mut candidate.queries {
        q.terms = q.terms.iter().map(ren_term).collect();
    }
    candidate.program = Program::new(
        case.program
            .rules
            .iter()
            .map(|r| {
                let mut rule: Rule = r.clone();
                rule.head.terms = rule.head.terms.iter().map(ren_term).collect();
                for lit in &mut rule.body {
                    lit.atom.terms = lit.atom.terms.iter().map(ren_term).collect();
                }
                rule
            })
            .collect(),
    );
    if still_fails(&candidate) {
        *case = candidate;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracles::Family;
    use datalog_ast::{fact, parse_atom, parse_database, parse_program};

    fn base_case() -> Case {
        Case {
            family: Family::Engines,
            seed: 7,
            program: parse_program(
                "g(X, Z) :- a(X, Z).
                 g(X, Z) :- g(X, Y), g(Y, Z).
                 h(X) :- c(X), g(X, X).",
            )
            .unwrap(),
            db: parse_database("a(4,5). a(5,6). a(6,4). c(4). c(9). a(10,11).").unwrap(),
            queries: vec![parse_atom("g(4, X)").unwrap(), parse_atom("h(Y)").unwrap()],
            mutations: Vec::new(),
        }
    }

    #[test]
    fn reduces_to_the_failure_core() {
        // Synthetic failure: "the fixpoint contains g(4, 4)" — needs the
        // 4→5→6→4 cycle and both g-rules, but not h, c, or the stray edge.
        let failing = |c: &Case| {
            datalog_engine::seminaive::evaluate(&c.program, &c.db).contains(&fact("g", [4, 4]))
        };
        let case = base_case();
        assert!(failing(&case));
        let reduced = reduce(&case, &failing);
        assert!(failing(&reduced));
        assert!(reduced.program.len() <= 2, "kept:\n{}", reduced.program);
        assert!(reduced.db.len() <= 3, "kept {} facts", reduced.db.len());
        assert!(reduced.queries.is_empty());
    }

    #[test]
    fn reduction_is_idempotent_and_deterministic() {
        let failing = |c: &Case| {
            let out = datalog_engine::seminaive::evaluate(&c.program, &c.db);
            out.relation_len(datalog_ast::Pred::new("g")) >= 3
        };
        let case = base_case();
        assert!(failing(&case));
        let once = reduce(&case, &failing);
        let twice = reduce(&once, &failing);
        assert_eq!(once, twice, "reduce must be idempotent");
        let again = reduce(&case, &failing);
        assert_eq!(once, again, "reduce must be deterministic");
    }

    #[test]
    fn renumbering_densifies_constants() {
        // A predicate insensitive to the concrete constants: any nonempty
        // g-relation. Renumbering applies and maps 4.. onto 0..
        let failing = |c: &Case| {
            datalog_engine::seminaive::evaluate(&c.program, &c.db)
                .relation(datalog_ast::Pred::new("g"))
                .next()
                .is_some()
        };
        let case = base_case();
        let reduced = reduce(&case, &failing);
        let max = reduced
            .db
            .active_domain()
            .into_iter()
            .filter_map(|c| match c {
                Const::Int(i) => Some(i),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        assert!(max <= 1, "constants not densified (max {max})");
    }
}
