//! Self-contained repro fixtures: render a [`Case`] to text and parse it
//! back.
//!
//! The format (documented in `docs/FUZZING.md`) is line-oriented:
//!
//! ```text
//! % oracle: engines
//! % kind: query:magic
//! % seed: 42
//! [program]
//! g(X, Z) :- a(X, Z).
//! g(X, Z) :- g(X, Y), g(Y, Z).
//! [database]
//! a(0, 1).
//! [queries]
//! g(X, X).
//! [mutations]
//! + a(1, 2).
//! - a(0, 1).
//! ```
//!
//! Leading `%` lines are `key: value` metadata; `[section]` headers
//! introduce the program (standard Datalog syntax), the initial database,
//! the queries (one atom per line), and the mutation interleaving (`+` for
//! an insert batch, `-` for a remove batch, facts separated by `. `).
//! Empty sections may be omitted. Rendering is canonical: facts are sorted
//! by their textual form, so a fixture is byte-for-byte reproducible
//! regardless of symbol-interning order.

use crate::oracles::Family;
use crate::workload::{Case, Mutation};
use datalog_ast::{parse_atom, parse_database, parse_program, Database, GroundAtom, Program};
use std::fmt;

/// A parsed or to-be-written `.repro` file: metadata plus the case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fixture {
    /// `key: value` pairs from the leading `%` lines, in order. The keys
    /// `oracle` and `seed` drive replay; everything else is documentation.
    pub meta: Vec<(String, String)>,
    pub case: Case,
}

/// Error from [`Fixture::parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FixtureError(pub String);

impl fmt::Display for FixtureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fixture: {}", self.0)
    }
}

impl std::error::Error for FixtureError {}

fn sorted_fact_lines(db: &Database) -> Vec<String> {
    let mut lines: Vec<String> = db.iter().map(|a| format!("{a}.")).collect();
    lines.sort();
    lines
}

fn sorted_batch(facts: &[GroundAtom]) -> String {
    let mut parts: Vec<String> = facts.iter().map(|a| format!("{a}.")).collect();
    parts.sort();
    parts.join(" ")
}

impl Fixture {
    /// Build a fixture for a reduced case, stamping the standard metadata.
    pub fn for_case(case: Case, kind: &str) -> Fixture {
        let meta = vec![
            ("oracle".to_string(), case.family.name().to_string()),
            ("kind".to_string(), kind.to_string()),
            ("seed".to_string(), case.seed.to_string()),
        ];
        Fixture { meta, case }
    }

    /// Canonical textual form. Byte-for-byte deterministic for equal cases.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.meta {
            out.push_str(&format!("% {k}: {v}\n"));
        }
        out.push_str("[program]\n");
        for rule in &self.case.program.rules {
            out.push_str(&format!("{rule}\n"));
        }
        if !self.case.db.is_empty() {
            out.push_str("[database]\n");
            for line in sorted_fact_lines(&self.case.db) {
                out.push_str(&line);
                out.push('\n');
            }
        }
        if !self.case.queries.is_empty() {
            out.push_str("[queries]\n");
            for q in &self.case.queries {
                out.push_str(&format!("{q}.\n"));
            }
        }
        if !self.case.mutations.is_empty() {
            out.push_str("[mutations]\n");
            for m in &self.case.mutations {
                let sign = if m.is_insert() { '+' } else { '-' };
                out.push_str(&format!("{sign} {}\n", sorted_batch(m.facts())));
            }
        }
        out
    }

    /// Parse a `.repro` file.
    pub fn parse(src: &str) -> Result<Fixture, FixtureError> {
        let mut meta: Vec<(String, String)> = Vec::new();
        let mut section: Option<&str> = None;
        let mut program_src = String::new();
        let mut db_src = String::new();
        let mut queries: Vec<String> = Vec::new();
        let mut mutation_lines: Vec<(char, String)> = Vec::new();

        for (lineno, raw) in src.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('%') {
                if section.is_none() {
                    if let Some((k, v)) = rest.split_once(':') {
                        meta.push((k.trim().to_string(), v.trim().to_string()));
                    }
                }
                continue; // later % lines are comments
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = Some(match name {
                    "program" => "program",
                    "database" => "database",
                    "queries" => "queries",
                    "mutations" => "mutations",
                    other => {
                        return Err(FixtureError(format!(
                            "line {}: unknown section [{other}]",
                            lineno + 1
                        )))
                    }
                });
                continue;
            }
            match section {
                Some("program") => {
                    program_src.push_str(line);
                    program_src.push('\n');
                }
                Some("database") => {
                    db_src.push_str(line);
                    db_src.push('\n');
                }
                Some("queries") => queries.push(line.trim_end_matches('.').to_string()),
                Some("mutations") => {
                    let Some(sign) = line.chars().next().filter(|c| *c == '+' || *c == '-') else {
                        return Err(FixtureError(format!(
                            "line {}: mutation lines start with + or -",
                            lineno + 1
                        )));
                    };
                    mutation_lines.push((sign, line[1..].trim().to_string()));
                }
                _ => {
                    return Err(FixtureError(format!(
                        "line {}: content before any [section]",
                        lineno + 1
                    )))
                }
            }
        }

        let family = meta
            .iter()
            .find(|(k, _)| k == "oracle")
            .and_then(|(_, v)| Family::parse(v))
            .ok_or_else(|| FixtureError("missing or invalid `% oracle:` metadata".into()))?;
        let seed = meta
            .iter()
            .find(|(k, _)| k == "seed")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        let program: Program =
            parse_program(&program_src).map_err(|e| FixtureError(format!("[program]: {e}")))?;
        let db = parse_database(&db_src).map_err(|e| FixtureError(format!("[database]: {e}")))?;
        let queries = queries
            .iter()
            .map(|q| parse_atom(q).map_err(|e| FixtureError(format!("[queries] `{q}`: {e}"))))
            .collect::<Result<Vec<_>, _>>()?;
        let mutations = mutation_lines
            .into_iter()
            .map(|(sign, rest)| {
                let facts: Vec<GroundAtom> = parse_database(&rest)
                    .map_err(|e| FixtureError(format!("[mutations] `{rest}`: {e}")))?
                    .iter()
                    .collect();
                Ok(if sign == '+' {
                    Mutation::Insert(facts)
                } else {
                    Mutation::Remove(facts)
                })
            })
            .collect::<Result<Vec<_>, FixtureError>>()?;

        Ok(Fixture {
            meta,
            case: Case {
                family,
                seed,
                program,
                db,
                queries,
                mutations,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::fact;

    fn sample() -> Fixture {
        let case = Case {
            family: Family::Incremental,
            seed: 99,
            program: parse_program("g(X, Z) :- a(X, Z). g(X, Z) :- g(X, Y), g(Y, Z).").unwrap(),
            db: parse_database("a(0,1). a(1,2).").unwrap(),
            queries: vec![parse_atom("g(0, X)").unwrap()],
            mutations: vec![
                Mutation::Insert(vec![fact("a", [2, 0])]),
                Mutation::Remove(vec![fact("a", [0, 1]), fact("a", [1, 2])]),
            ],
        };
        Fixture::for_case(case, "incr:step")
    }

    #[test]
    fn round_trips() {
        let fx = sample();
        let text = fx.render();
        let back = Fixture::parse(&text).unwrap();
        assert_eq!(back, fx);
        // Rendering the parse renders identically: canonical form.
        assert_eq!(back.render(), text);
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let fx = sample();
        let text = fx.render();
        let db_at = text.find("[database]").unwrap();
        let q_at = text.find("[queries]").unwrap();
        let db_block = &text[db_at..q_at];
        assert!(db_block.find("a(0, 1)").unwrap() < db_block.find("a(1, 2)").unwrap());
        assert!(text.starts_with("% oracle: incremental\n% kind: incr:step\n% seed: 99\n"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Fixture::parse("[program]\n???").is_err());
        assert!(
            Fixture::parse("g(X) :- a(X).").is_err(),
            "content before section"
        );
        assert!(
            Fixture::parse("[program]\n").is_err(),
            "missing oracle meta"
        );
        assert!(Fixture::parse("% oracle: engines\n[mutations]\nx a(1).").is_err());
    }

    #[test]
    fn omitted_sections_parse_empty() {
        let fx = Fixture::parse("% oracle: engines\n[program]\ng(X) :- a(X).\n").unwrap();
        assert!(fx.case.db.is_empty());
        assert!(fx.case.queries.is_empty());
        assert!(fx.case.mutations.is_empty());
        assert_eq!(fx.case.seed, 0);
    }
}
