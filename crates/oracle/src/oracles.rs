//! The oracle families and their divergence checks.
//!
//! Each check recomputes the same answer several independent ways and
//! reports every disagreement as a [`Divergence`]. The reference result is
//! always the sequential semi-naive fixpoint ([`seminaive::evaluate`]) —
//! every other evaluator, query strategy, optimizer output, and incremental
//! state is compared against it (or against a from-scratch recomputation
//! seeded by it).
//!
//! * **Engine matrix** — naive, rebuilding semi-naive, SCC-layered,
//!   stratified, parallel (2/4 workers), and interpreted (columnar join
//!   kernels disabled, sequential and 2 workers) evaluation must produce
//!   identical fixpoints; magic-sets and QSQ answers must equal the
//!   pattern-filtered fixpoint for every query.
//! * **Optimization soundness** — `minimize_program` (Fig. 2),
//!   `minimize_program_in_order` under a random consideration order, and a
//!   redundancy-injected bloat must all agree with the original program on
//!   IDB-seeded databases (the paper's uniform-equivalence regime, §IV),
//!   and the minimized programs must test ≡u against the original (§VI).
//! * **Incremental consistency** — after every insert/remove batch the
//!   [`Materialized`] fixpoint must equal a from-scratch evaluation of the
//!   surviving base.
//! * **Query-cache consistency** — a [`View`] + [`QueryState`] pair (the
//!   service's point-query path) is driven through interleaved adorned
//!   queries and invalidating write batches; every answer — cold, served
//!   from the cache, or filtered out of a more general cached set by §V/§VI
//!   subsumption — must equal the pattern-filtered from-scratch fixpoint of
//!   the same base.
//! * **Concurrent service** — racing client threads drive
//!   interleaving-independent insert/remove batches (plus readers) through
//!   an in-process [`Registry`] (sharded per seed); because no fact is both
//!   inserted and removed, every interleaving must converge to the same
//!   final base, whose from-scratch fixpoint the served snapshot must
//!   equal.

use crate::workload::{Case, Mutation};
use datalog_ast::{match_atom, Atom, Const, Database, GroundAtom, Pred, Program, Term};
use datalog_engine::query::Strategy;
use datalog_engine::{magic, naive, qsq, scc_eval, seminaive, stratified, EvalOptions, Stats};
use datalog_engine::{Materialized, ShardedMaterialized};
use datalog_optimizer::{minimize_program, minimize_program_in_order, uniformly_equivalent};
use datalog_service::{CacheStatus, QueryState, Registry, View};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::fmt;

/// The oracle family a case belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Family {
    Engines,
    Optimization,
    Incremental,
    QueryCache,
    ConcurrentService,
    Metamorphic,
}

impl Family {
    pub const ALL: [Family; 6] = [
        Family::Engines,
        Family::Optimization,
        Family::Incremental,
        Family::QueryCache,
        Family::ConcurrentService,
        Family::Metamorphic,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Family::Engines => "engines",
            Family::Optimization => "optimization",
            Family::Incremental => "incremental",
            Family::QueryCache => "query-cache",
            Family::ConcurrentService => "concurrent-service",
            Family::Metamorphic => "metamorphic",
        }
    }

    pub fn parse(s: &str) -> Option<Family> {
        match s {
            "engines" => Some(Family::Engines),
            "optimization" => Some(Family::Optimization),
            "incremental" => Some(Family::Incremental),
            "query-cache" => Some(Family::QueryCache),
            "concurrent-service" => Some(Family::ConcurrentService),
            "metamorphic" => Some(Family::Metamorphic),
            _ => None,
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One disagreement between two ways of computing the same answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    pub family: Family,
    /// Stable machine-readable kind, e.g. `engine:naive`, `query:magic`,
    /// `opt:minimized`, `incr:step`.
    pub kind: String,
    /// Human-readable explanation with sample atoms from both sides.
    pub message: String,
}

/// Run the case's oracle family, returning every divergence found.
///
/// Invalid intermediate cases (as the reducer may produce) are treated as
/// non-divergent: a reduction step that breaks validity is simply rejected.
pub fn check(case: &Case) -> Vec<Divergence> {
    if datalog_ast::validate(&case.program).is_err() {
        return Vec::new();
    }
    match case.family {
        Family::Engines => check_engines(case),
        Family::Optimization => check_optimization(case),
        Family::Incremental => check_incremental(case),
        Family::QueryCache => check_query_cache(case),
        Family::ConcurrentService => check_concurrent_service(case),
        Family::Metamorphic => check_metamorphic(case),
    }
}

/// Evaluation work of the sequential reference fixpoint for `case` — the
/// same evaluator every oracle compares against. Folded across a fuzzing
/// run this surfaces the storage layer's allocation behaviour
/// (`tuples_allocated`, `arena_bytes`) in the fuzz report.
pub fn reference_stats(case: &Case) -> Stats {
    let program = &case.program;
    let db = &case.db;
    if program.is_positive() {
        seminaive::evaluate_with_opts(program, db, EvalOptions::sequential()).1
    } else {
        stratified::evaluate_with_opts(program, db, EvalOptions::sequential())
            .map(|(_, stats)| stats)
            .unwrap_or_default()
    }
}

/// Render a compact sample of the symmetric difference between two
/// databases, capped so reducer-sized repros stay readable.
fn diff_sample(expected: &Database, got: &Database) -> String {
    let cap = 4;
    let missing: Vec<String> = expected
        .iter()
        .filter(|a| !got.contains(a))
        .take(cap)
        .map(|a| a.to_string())
        .collect();
    let extra: Vec<String> = got
        .iter()
        .filter(|a| !expected.contains(a))
        .take(cap)
        .map(|a| a.to_string())
        .collect();
    format!(
        "missing [{}] extra [{}] (expected {} atoms, got {})",
        missing.join(", "),
        extra.join(", "),
        expected.len(),
        got.len()
    )
}

/// The reference answer for an adorned query: the full fixpoint filtered by
/// pattern-matching the query atom (consistently binding repeated
/// variables).
pub fn filtered_fixpoint(full: &Database, query: &Atom) -> Database {
    let mut out = Database::new();
    for tuple in full.relation(query.pred) {
        let g = GroundAtom {
            pred: query.pred,
            tuple: tuple.into(),
        };
        if match_atom(query, &g).is_some() {
            out.insert(g);
        }
    }
    out
}

fn check_engines(case: &Case) -> Vec<Divergence> {
    let mut out = Vec::new();
    let program = &case.program;
    let db = &case.db;

    if !program.is_positive() {
        // Stratified negation: the worker-count matrix is the only other
        // evaluator that supports it.
        let Ok(reference) = stratified::evaluate(program, db) else {
            return out; // not stratifiable — nothing to compare
        };
        let variants: Vec<(String, EvalOptions)> = vec![
            ("stratified-2".into(), EvalOptions::with_threads(2)),
            ("stratified-4".into(), EvalOptions::with_threads(4)),
            // The row-at-a-time interpreter is the differential reference
            // for the specialized columnar kernels: every case exercises
            // both sides of the executor split.
            ("stratified-interpreted".into(), EvalOptions::interpreted()),
            // Pipeline tier off while 2-atom kernels stay on: isolates the
            // multi-atom pipelined executor under negation.
            (
                "stratified-interpreted-3atom".into(),
                EvalOptions::sequential().with_pipeline(false),
            ),
        ];
        for (name, opts) in variants {
            match stratified::evaluate_with_opts(program, db, opts) {
                Ok((got, _)) if got == reference => {}
                Ok((got, _)) => out.push(Divergence {
                    family: Family::Engines,
                    kind: format!("engine:{name}"),
                    message: format!(
                        "{name} disagrees with sequential: {}",
                        diff_sample(&reference, &got)
                    ),
                }),
                Err(e) => out.push(Divergence {
                    family: Family::Engines,
                    kind: format!("engine:{name}"),
                    message: format!("{name} errored: {e}"),
                }),
            }
        }
        return out;
    }

    let reference = seminaive::evaluate(program, db);
    let mut engines: Vec<(String, Database)> = vec![
        ("naive".into(), naive::evaluate(program, db)),
        (
            "rebuilding".into(),
            seminaive::evaluate_rebuilding(program, db),
        ),
        ("scc".into(), scc_eval::evaluate(program, db)),
    ];
    if let Ok(strat) = stratified::evaluate(program, db) {
        engines.push(("stratified".into(), strat));
    }
    for workers in [2usize, 4] {
        let (got, _) =
            seminaive::evaluate_with_opts(program, db, EvalOptions::with_threads(workers));
        engines.push((format!("parallel-{workers}"), got));
    }
    // The hash-partitioned sharded evaluator: N replica contexts splitting
    // every delta by shard key and exchanging cross-shard derivations must
    // land on the same fixpoint as one context.
    for shards in [2usize, 4] {
        let sharded = ShardedMaterialized::new(program.clone(), db, shards);
        engines.push((format!("sharded-{shards}"), sharded.database().clone()));
    }
    // Specialized columnar kernels vs the row-at-a-time interpreter: the
    // default reference above runs with specialization on, so evaluating
    // with it forced off makes every engines case a differential test of
    // the executor split (sequential and under parallel task slicing).
    let (got, _) = seminaive::evaluate_with_opts(program, db, EvalOptions::interpreted());
    engines.push(("interpreted".into(), got));
    let (got, _) = seminaive::evaluate_with_opts(
        program,
        db,
        EvalOptions::with_threads(2).with_specialize(false),
    );
    engines.push(("interpreted-parallel-2".into(), got));
    // The executor split within the specialized tier: 3+-atom bodies take
    // the pipelined multi-atom kernel by default; forcing them back to the
    // interpreter (while 2-atom kernels stay specialized) isolates the
    // pipeline. A second full-pipeline run double-checks that the
    // cross-task batch cache is deterministic.
    let (got, _) = seminaive::evaluate_with_opts(program, db, EvalOptions::sequential());
    engines.push(("specialized-3atom".into(), got));
    let (got, _) =
        seminaive::evaluate_with_opts(program, db, EvalOptions::sequential().with_pipeline(false));
    engines.push(("interpreted-3atom".into(), got));
    for (name, got) in engines {
        if got != reference {
            out.push(Divergence {
                family: Family::Engines,
                kind: format!("engine:{name}"),
                message: format!(
                    "{name} disagrees with sequential semi-naive: {}",
                    diff_sample(&reference, &got)
                ),
            });
        }
    }

    for query in &case.queries {
        let expected = filtered_fixpoint(&reference, query);
        for (strategy, got) in [
            ("magic", magic::answer(program, db, query)),
            ("qsq", qsq::answer(program, db, query)),
        ] {
            if got != expected {
                out.push(Divergence {
                    family: Family::Engines,
                    kind: format!("query:{strategy}"),
                    message: format!(
                        "{strategy} answer for `{query}` disagrees with the filtered fixpoint: {}",
                        diff_sample(&expected, &got)
                    ),
                });
            }
        }
    }
    out
}

/// Pattern-filter the `answer_pred` tuples of an evaluated magic program
/// back into the query's own predicate (consistently binding repeated
/// variables), mirroring what [`magic::answer`] serves.
fn magic_answers(full: &Database, answer_pred: Pred, query: &Atom) -> Database {
    let mut out = Database::new();
    for tuple in full.relation(answer_pred) {
        let g = GroundAtom {
            pred: query.pred,
            tuple: tuple.into(),
        };
        if match_atom(query, &g).is_some() {
            out.insert(g);
        }
    }
    out
}

/// The metamorphic chain (ROADMAP item 4): optimizations and query
/// transformations compose, so chaining them must not change any answer.
/// For each query the chain is minimize → magic-sets transform → parallel
/// evaluation (2 workers, pipelined kernels) of the transformed program →
/// minimize the transformed program again and re-evaluate sequentially.
/// Every hop's answer must equal the pattern-filtered fixpoint of the
/// untouched program on the untouched database.
fn check_metamorphic(case: &Case) -> Vec<Divergence> {
    let mut out = Vec::new();
    let program = &case.program;
    if !program.is_positive() {
        return out;
    }
    let db = &case.db;
    let reference = seminaive::evaluate(program, db);
    let diverge = |kind: &str, query: &Atom, expected: &Database, got: &Database| Divergence {
        family: Family::Metamorphic,
        kind: format!("meta:{kind}"),
        message: format!(
            "{kind} answer for `{query}` disagrees with the plain filtered fixpoint: {}",
            diff_sample(expected, got)
        ),
    };

    // Hop 1: minimize the source program (uniform equivalence preserves
    // every fixpoint, so every downstream answer must survive).
    let minimized = match minimize_program(program) {
        Ok((min, _)) => min,
        Err(e) => {
            out.push(Divergence {
                family: Family::Metamorphic,
                kind: "meta:minimize".into(),
                message: format!("minimize_program failed on a valid program: {e}"),
            });
            return out;
        }
    };

    for query in &case.queries {
        let expected = filtered_fixpoint(&reference, query);

        // Hop 2: magic-sets transform of the *minimized* program.
        let magic = magic::magic_transform(&minimized, query);
        let mut input = db.clone();
        input.insert(magic.seed.clone());

        // Hop 3: evaluate the transformed program in parallel (2 workers),
        // exercising the pipelined kernels on the guarded multi-atom magic
        // rules under task slicing.
        let (full, _) =
            seminaive::evaluate_with_opts(&magic.program, &input, EvalOptions::with_threads(2));
        let got = magic_answers(&full, magic.answer_pred, query);
        if got != expected {
            out.push(diverge("minimize-magic-parallel", query, &expected, &got));
            continue;
        }

        // Hop 4: minimize the magic program itself and evaluate again —
        // the transform's output is an ordinary positive program, so the
        // optimizer must be able to digest its own downstream.
        match minimize_program(&magic.program) {
            Ok((again, _)) => {
                let full = seminaive::evaluate(&again, &input);
                let got = magic_answers(&full, magic.answer_pred, query);
                if got != expected {
                    out.push(diverge("minimize-again", query, &expected, &got));
                }
            }
            Err(e) => out.push(Divergence {
                family: Family::Metamorphic,
                kind: "meta:minimize-again".into(),
                message: format!("minimize_program failed on a magic-transformed program: {e}"),
            }),
        }
    }
    out
}

fn check_optimization(case: &Case) -> Vec<Divergence> {
    let mut out = Vec::new();
    let program = &case.program;
    if !program.is_positive() {
        return out;
    }
    let db = &case.db;
    let reference = seminaive::evaluate(program, db);

    let mut candidates: Vec<(String, Program)> = Vec::new();
    match minimize_program(program) {
        Ok((min, _)) => candidates.push(("minimized".into(), min)),
        Err(e) => out.push(Divergence {
            family: Family::Optimization,
            kind: "opt:error".into(),
            message: format!("minimize_program failed on a valid program: {e}"),
        }),
    }
    // A random consideration order — the satellite audit: every order must
    // yield a uniformly equivalent (if not syntactically identical) program.
    let mut rng = StdRng::seed_from_u64(case.seed ^ 0x5bd1_e995);
    let rule_order = permutation(&mut rng, program.len());
    let atom_orders: Vec<Vec<usize>> = program
        .rules
        .iter()
        .map(|r| permutation(&mut rng, r.width()))
        .collect();
    match minimize_program_in_order(program, &rule_order, &atom_orders) {
        Ok((min, _)) => candidates.push(("minimized-in-order".into(), min)),
        Err(e) => out.push(Divergence {
            family: Family::Optimization,
            kind: "opt:error".into(),
            message: format!("minimize_program_in_order failed on a valid program: {e}"),
        }),
    }
    // Redundancy injection is ≡u-preserving by construction; the bloat must
    // not change any fixpoint.
    let (bloated, applied) = datalog_generate::inject(program, 3, case.seed ^ 0xc2b2_ae35);
    if applied > 0 {
        candidates.push(("injected".into(), bloated));
    }

    for (name, candidate) in candidates {
        let got = seminaive::evaluate(&candidate, db);
        if got != reference {
            out.push(Divergence {
                family: Family::Optimization,
                kind: format!("opt:{name}"),
                message: format!(
                    "{name} program disagrees with the original on this database: {}",
                    diff_sample(&reference, &got)
                ),
            });
        }
        if name.starts_with("minimized") {
            match uniformly_equivalent(&candidate, program) {
                Ok(true) => {}
                Ok(false) => out.push(Divergence {
                    family: Family::Optimization,
                    kind: format!("opt:{name}-equiv"),
                    message: format!("{name} program is not uniformly equivalent to the original"),
                }),
                Err(e) => out.push(Divergence {
                    family: Family::Optimization,
                    kind: "opt:error".into(),
                    message: format!("≡u check failed: {e}"),
                }),
            }
        }
    }
    out
}

fn permutation(rng: &mut StdRng, n: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    // Fisher–Yates with the vendored rng.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..i + 1);
        order.swap(i, j);
    }
    order
}

fn check_incremental(case: &Case) -> Vec<Divergence> {
    let mut out = Vec::new();
    let program = &case.program;
    if !program.is_positive() {
        return out;
    }
    let mut m = Materialized::new(program.clone(), &case.db);
    let mut shadow = case.db.clone();

    // Commit 0: initial saturation.
    let scratch = seminaive::evaluate(program, &shadow);
    if m.database() != &scratch {
        out.push(Divergence {
            family: Family::Incremental,
            kind: "incr:init".into(),
            message: format!(
                "initial materialization disagrees with from-scratch: {}",
                diff_sample(&scratch, m.database())
            ),
        });
        return out;
    }

    for (step, mutation) in case.mutations.iter().enumerate() {
        match mutation {
            Mutation::Insert(facts) => {
                for f in facts {
                    shadow.insert(f.clone());
                }
                m.insert(facts.iter().cloned());
            }
            Mutation::Remove(facts) => {
                for f in facts {
                    shadow.remove(f);
                }
                m.remove(facts.iter().cloned());
            }
        }
        let scratch = seminaive::evaluate(program, &shadow);
        if m.database() != &scratch {
            let op = if mutation.is_insert() {
                "insert"
            } else {
                "remove"
            };
            out.push(Divergence {
                family: Family::Incremental,
                kind: "incr:step".into(),
                message: format!(
                    "after {op} batch #{step} the materialization disagrees with from-scratch: {}",
                    diff_sample(&scratch, m.database())
                ),
            });
            return out; // later steps would only echo the same corruption
        }
    }
    out
}

/// Narrow `query` for the subsumption differential: substitute a constant
/// for every occurrence of its first variable, so the result is covered by
/// `query` (and hence by whatever cache entry served it). The constant is
/// taken from the answer set when possible, so the narrowed query usually
/// has answers; `None` for fully ground queries.
fn narrow_query(query: &Atom, answers: &Database) -> Option<Atom> {
    let (pos, var) = query.terms.iter().enumerate().find_map(|(i, t)| match t {
        Term::Var(v) => Some((i, *v)),
        Term::Const(_) => None,
    })?;
    let constant = answers
        .relation(query.pred)
        .next()
        .map(|tuple| tuple[pos])
        .unwrap_or(Const::Int(0));
    let terms = query
        .terms
        .iter()
        .map(|t| match t {
            Term::Var(v) if *v == var => Term::Const(constant),
            other => *other,
        })
        .collect();
    Some(Atom {
        pred: query.pred,
        terms,
    })
}

fn check_query_cache(case: &Case) -> Vec<Divergence> {
    let mut out = Vec::new();
    let program = &case.program;
    if !program.is_positive() {
        return out;
    }
    let diverge = |kind: &str, query: &Atom, expected: &Database, got: &Database| Divergence {
        family: Family::QueryCache,
        kind: format!("query-cache:{kind}"),
        message: format!(
            "{kind} answer for `{query}` disagrees with the filtered from-scratch fixpoint: {}",
            diff_sample(expected, got)
        ),
    };
    // The exact pair the service runs per installed program: a view plus the
    // plan/answer-cache state, invalidated from the view's pre-publication
    // hook (mirroring `Registry::op_mutate`).
    let view = View::new(program.clone(), &case.db);
    let state = QueryState::new(program);
    // Rounds: the initial base, then the base after each mutation batch.
    for round in 0..=case.mutations.len() {
        let published = view.state();
        let reference = seminaive::evaluate(program, &published.base);
        for (qi, query) in case.queries.iter().enumerate() {
            // Alternate strategies across rounds and queries: cached
            // answers are strategy-agnostic.
            let strategy = if (round + qi) % 2 == 0 {
                Strategy::Magic
            } else {
                Strategy::Qsq
            };
            let expected = filtered_fixpoint(&reference, query);
            let (cold, _, _) = state.answer(&published, query, strategy);
            if *cold != expected {
                out.push(diverge("cold", query, &expected, &cold));
                return out; // the cache now holds a wrong set; stop here
            }
            // Repeating the query at the same version must be served from
            // the cache — and still agree.
            let (warm, status, _) = state.answer(&published, query, strategy);
            if *warm != expected {
                out.push(diverge("warm", query, &expected, &warm));
                return out;
            }
            if status == CacheStatus::Miss {
                out.push(Divergence {
                    family: Family::QueryCache,
                    kind: "query-cache:recompute".into(),
                    message: format!(
                        "repeated query `{query}` at an unchanged version re-evaluated \
                         instead of hitting the cache"
                    ),
                });
            }
            // A narrowed instance is covered by the entry that just served
            // `query`: it must be answered from the cache by subsumption,
            // and the filtered set must agree with the reference.
            if let Some(narrow) = narrow_query(query, &expected) {
                let expected_narrow = filtered_fixpoint(&reference, &narrow);
                let (sub, status, _) = state.answer(&published, &narrow, strategy);
                if *sub != expected_narrow {
                    out.push(diverge("subsumed", &narrow, &expected_narrow, &sub));
                    return out;
                }
                if status == CacheStatus::Miss {
                    out.push(Divergence {
                        family: Family::QueryCache,
                        kind: "query-cache:recompute".into(),
                        message: format!(
                            "`{narrow}` is covered by the cached `{query}` but re-evaluated"
                        ),
                    });
                }
            }
        }
        if let Some(mutation) = case.mutations.get(round) {
            let changed: BTreeSet<Pred> = mutation.facts().iter().map(|f| f.pred).collect();
            let invalidate = |version: u64| {
                state.invalidate(changed.iter().copied(), version);
            };
            match mutation {
                Mutation::Insert(facts) => view.insert_then(facts.clone(), invalidate),
                Mutation::Remove(facts) => view.remove_then(facts.clone(), invalidate),
            };
        }
    }
    out
}

/// Render facts as a `facts` request field: `"a(1, 2). b(3)."`.
fn facts_field(facts: &[GroundAtom]) -> String {
    facts
        .iter()
        .map(|f| format!("{f}."))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Build one protocol request line.
fn request_line(op: &str, fields: &[(&str, &str)]) -> String {
    let mut pairs = vec![("op".to_string(), datalog_json::Value::from(op))];
    pairs.extend(
        fields
            .iter()
            .map(|(k, v)| (k.to_string(), datalog_json::Value::from(*v))),
    );
    datalog_json::Value::Object(pairs).to_compact()
}

/// Race the case's mutation batches through an in-process [`Registry`]
/// (the real service dispatcher, sharded per seed) from several client
/// threads, with readers hammering queries throughout. The workload is
/// interleaving-independent by construction — no fact is both inserted and
/// removed — so every schedule must converge to base = initial ∪ inserts ∖
/// removals, and the served snapshot must equal that base's from-scratch
/// fixpoint.
fn check_concurrent_service(case: &Case) -> Vec<Divergence> {
    let mut out = Vec::new();
    let program = &case.program;
    if !program.is_positive() {
        return out;
    }
    let diverge = |kind: &str, message: String| Divergence {
        family: Family::ConcurrentService,
        kind: format!("service:{kind}"),
        message,
    };
    let shards = [1usize, 2, 4][(case.seed % 3) as usize];
    let registry = Registry::with_shards(shards);
    // Lint gate off: generated programs may trip style lints; this oracle
    // tests serving, not the gate.
    let entry = match registry.install("p", &program.to_string(), true, false) {
        Ok(entry) => entry,
        Err(e) => {
            out.push(diverge(
                "install",
                format!("install of a valid positive program failed: {e}"),
            ));
            return out;
        }
    };
    // The initial base goes in before the race (it is the "∪ initial" term
    // of the expected final state, not part of the interleaving).
    entry.view.insert(case.db.iter().collect());

    // Serialize each batch as the exact wire request a client would send.
    let lines: Vec<String> = case
        .mutations
        .iter()
        .map(|m| {
            let (op, facts) = match m {
                Mutation::Insert(fs) => ("insert", fs),
                Mutation::Remove(fs) => ("remove", fs),
            };
            request_line(op, &[("program", "p"), ("facts", &facts_field(facts))])
        })
        .collect();
    let query_lines: Vec<String> = case
        .queries
        .iter()
        .map(|q| request_line("query", &[("program", "p"), ("atom", &q.to_string())]))
        .collect();

    // Race: 3 writer threads split the batches round-robin; a reader
    // thread cycles the queries. Every response must be ok — collected,
    // not asserted, so a failure reports as a divergence.
    let writers = 3usize.min(lines.len().max(1));
    let failures: std::sync::Mutex<Vec<String>> = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for w in 0..writers {
            let registry = &registry;
            let lines = &lines;
            let failures = &failures;
            scope.spawn(move || {
                for line in lines.iter().skip(w).step_by(writers) {
                    let (resp, _) = registry.handle_line(line);
                    if !resp.contains("\"ok\":true") {
                        failures.lock().unwrap().push(format!("{line} -> {resp}"));
                    }
                }
            });
        }
        if !query_lines.is_empty() {
            let registry = &registry;
            let query_lines = &query_lines;
            let failures = &failures;
            scope.spawn(move || {
                for _ in 0..8 {
                    for line in query_lines {
                        let (resp, _) = registry.handle_line(line);
                        if !resp.contains("\"ok\":true") {
                            failures.lock().unwrap().push(format!("{line} -> {resp}"));
                        }
                    }
                }
            });
        }
    });
    for failure in failures.into_inner().unwrap().into_iter().take(3) {
        out.push(diverge("request", format!("request failed: {failure}")));
    }
    if !out.is_empty() {
        return out;
    }

    // The interleaving-independent expectation.
    let mut expected_base = case.db.clone();
    for m in &case.mutations {
        if let Mutation::Insert(fs) = m {
            for f in fs {
                expected_base.insert(f.clone());
            }
        }
    }
    for m in &case.mutations {
        if let Mutation::Remove(fs) = m {
            for f in fs {
                expected_base.remove(f);
            }
        }
    }
    let got_base = entry.view.base();
    if got_base != expected_base {
        out.push(diverge(
            "base",
            format!(
                "final base depends on the interleaving (shards={shards}): {}",
                diff_sample(&expected_base, &got_base)
            ),
        ));
        return out;
    }
    let expected = seminaive::evaluate(program, &expected_base);
    let got = entry.view.snapshot();
    if *got != expected {
        out.push(diverge(
            "final",
            format!(
                "served fixpoint disagrees with from-scratch evaluation of the final base \
                 (shards={shards}): {}",
                diff_sample(&expected, &got)
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::{parse_atom, parse_database, parse_program};

    #[test]
    fn clean_case_has_no_divergence() {
        let case = Case {
            family: Family::Engines,
            seed: 0,
            program: parse_program("g(X, Z) :- a(X, Z). g(X, Z) :- g(X, Y), g(Y, Z).").unwrap(),
            db: parse_database("a(1,2). a(2,3).").unwrap(),
            queries: vec![parse_atom("g(1, X)").unwrap()],
            mutations: Vec::new(),
        };
        assert_eq!(check(&case), Vec::new());
    }

    #[test]
    fn filtered_fixpoint_respects_repeated_vars() {
        let full = parse_database("g(1,1). g(1,2). g(2,2).").unwrap();
        let q = parse_atom("g(X, X)").unwrap();
        let got = filtered_fixpoint(&full, &q);
        assert_eq!(got, parse_database("g(1,1). g(2,2).").unwrap());
    }

    #[test]
    fn family_names_round_trip() {
        for f in Family::ALL {
            assert_eq!(Family::parse(f.name()), Some(f));
        }
        assert_eq!(Family::parse("nope"), None);
    }

    #[test]
    fn broken_candidate_is_reported() {
        // An incremental case whose removal hits a fact with a surviving
        // alternative derivation — must NOT diverge.
        let case = Case {
            family: Family::Incremental,
            seed: 0,
            program: parse_program("g(X, Z) :- a(X, Z). g(X, Z) :- g(X, Y), g(Y, Z).").unwrap(),
            db: parse_database("a(1,2). a(1,9). a(9,2). a(2,3).").unwrap(),
            queries: Vec::new(),
            mutations: vec![Mutation::Remove(vec![datalog_ast::fact("a", [1, 2])])],
        };
        assert_eq!(check(&case), Vec::new());
    }
}
