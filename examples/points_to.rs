//! Datalog as a program analysis engine: Andersen-style points-to analysis
//! — the workload that made Datalog mainstream in static analysis — run
//! through the Sagiv optimization pipeline.
//!
//! Run with: `cargo run --example points_to`

use sagiv_datalog::prelude::*;

fn main() {
    // Andersen's inclusion-based points-to, with the redundancy a code
    // generator typically leaves behind: a duplicated base rule and a
    // "one-step copy" rule subsumed by the transitive copy rule.
    let program = parse_program(
        "
        % v = &o
        pts(V, O) :- address_of(V, O).
        pts(V, O) :- address_of(V, O), var(V).          % generator artefact

        % v = w
        pts(V, O) :- assign(V, W), pts(W, O).
        pts(V, O) :- assign(V, W), address_of(W, O).    % subsumed one-step copy

        % v = *p
        pts(V, O) :- load(V, P), pts(P, Q), heap(Q, O).

        % *p = w
        heap(Q, O) :- store(P, W), pts(P, Q), pts(W, O).
        ",
    )
    .unwrap();
    validate_positive(&program).unwrap();

    let (minimized, removal) = minimize_program(&program).unwrap();
    println!(
        "minimization: {} rules → {} rules, {} body atoms → {}",
        program.len(),
        minimized.len(),
        program.total_width(),
        minimized.total_width()
    );
    for (idx, a) in &removal.atoms {
        println!("  - dropped atom {a} from rule {idx}");
    }
    for r in &removal.rules {
        println!("  - dropped rule {r}");
    }

    // A small program to analyse:
    //   p = &x; q = &y; r = p; *p = q; s = *r;
    let edb = parse_database(
        "
        var(p). var(q). var(r). var(s).
        address_of(p, x). address_of(q, y).
        assign(r, p).
        store(p, q).
        load(s, r).
        ",
    )
    .unwrap();

    let (result, stats) = seminaive::evaluate_with_stats(&minimized, &edb);
    assert_eq!(
        result,
        seminaive::evaluate(&program, &edb),
        "optimization is sound"
    );

    println!("\npoints-to facts ({stats}):");
    for t in result.relation(Pred::new("pts")) {
        println!("  pts({}, {})", t[0], t[1]);
    }
    for t in result.relation(Pred::new("heap")) {
        println!("  heap({}, {})", t[0], t[1]);
    }

    // s = *r where r = p and *p = q: s points to y.
    let s_to_y = GroundAtom::new("pts", vec![Const::from("s"), Const::from("y")]);
    assert!(result.contains(&s_to_y));
    println!("\ns may point to y: confirmed");

    // Demand-driven variant: "what does s point to?" via magic sets.
    let query = parse_atom("pts(s, O)").unwrap();
    let (answers, q_stats) = magic::answer_with_stats(&minimized, &edb, &query);
    println!("\ndemand-driven query pts(s, O):");
    for a in answers.iter() {
        println!("  {a}");
    }
    println!(
        "derived {} atoms demand-driven vs {} exhaustively",
        q_stats.derivations, stats.derivations
    );

    // Explain WHY s points to y — the provenance proof tree.
    let traced = sagiv_datalog::engine::provenance::evaluate_traced(&minimized, &edb);
    let proof = traced.explain(&s_to_y).expect("derivable");
    println!("\nderivation of pts(s, y):\n{proof}");
}
