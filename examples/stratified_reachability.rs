//! The §XII extension in action: stratified negation — network reachability
//! with an "unreachable" report — evaluated stratum-by-stratum and
//! minimized with the conservative stratified minimizer.
//!
//! Run with: `cargo run --example stratified_reachability`

use sagiv_datalog::optimizer::minimize_stratified;
use sagiv_datalog::prelude::*;

fn main() {
    let program = parse_program(
        "
        % stratum 0: reachability from monitors
        reach(X) :- monitor(X).
        reach(Y) :- reach(X), link(X, Y).
        reach(Y) :- reach(X), link(X, Y), node(Y).   % node(Y) is redundant here? No —
                                                     % only if every link target is a node;
                                                     % uniformly it must stay. But the whole
                                                     % rule is subsumed by the one above.

        % stratum 1: dark hosts — in the inventory but never reached
        dark(X) :- node(X), node(X), !reach(X).      % duplicated node(X)
        ",
    )
    .unwrap();
    validate(&program).unwrap();

    let strata = DepGraph::new(&program).stratify().unwrap();
    println!(
        "strata: reach={}, dark={}",
        strata[&Pred::new("reach")],
        strata[&Pred::new("dark")]
    );

    let (minimized, removal) = minimize_stratified(&program).unwrap();
    println!("\nminimized stratified program:");
    print!("{minimized}");
    println!("removed {} redundant parts:", removal.len());
    for (idx, atom) in &removal.atoms {
        println!("  - atom {atom} from rule {idx}");
    }
    for rule in &removal.rules {
        println!("  - rule {rule}");
    }

    // A small network: two segments, one without a monitor.
    let edb = parse_database(
        "
        monitor(1).
        node(1). node(2). node(3). node(4). node(5). node(6).
        link(1, 2). link(2, 3). link(3, 1).
        link(4, 5). link(5, 6).
        ",
    )
    .unwrap();

    let full = stratified::evaluate(&minimized, &edb).unwrap();
    let orig = stratified::evaluate(&program, &edb).unwrap();
    assert_eq!(
        full, orig,
        "minimization preserved the stratified semantics"
    );

    let reach: Vec<String> = full
        .relation(Pred::new("reach"))
        .map(|t| t[0].to_string())
        .collect();
    let dark: Vec<String> = full
        .relation(Pred::new("dark"))
        .map(|t| t[0].to_string())
        .collect();
    println!("\nreachable: {}", reach.join(", "));
    println!("dark:      {}", dark.join(", "));
    assert_eq!(dark, vec!["4", "5", "6"]);
}
