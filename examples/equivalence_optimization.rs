//! A guided tour of §X–§XI: proving `P2 ⊑ P1` with tuple-generating
//! dependencies, step by step, on the paper's Example 19.
//!
//! Run with: `cargo run --example equivalence_optimization`

use sagiv_datalog::optimizer::chase::Proof;
use sagiv_datalog::prelude::*;

fn main() {
    // Example 19: reachability where every reached node must be certified
    // by c(·). The recursive rule carries g(Y, W), c(W) — an invariant
    // restated, not a constraint.
    let p1 = parse_program(
        "g(X, Z) :- a(X, Z), c(Z).
         g(X, Z) :- a(X, Y), g(Y, Z), g(Y, W), c(W).",
    )
    .unwrap();
    println!("P1:\n{p1}");

    // Step 0 — uniform equivalence cannot remove anything here.
    let (min, removal) = minimize_program(&p1).unwrap();
    assert!(removal.is_empty());
    println!("Fig. 2 finds nothing: every atom matters under uniform equivalence.\n");
    drop(min);

    // Step 1 — §XI heuristics propose candidate tgds from the recursive rule.
    let rec_rule = &p1.rules[1];
    let candidates = candidate_tgds(rec_rule);
    println!("candidate tgds for `{rec_rule}`:");
    for c in &candidates {
        println!("  {}  (would remove body atoms {:?})", c.tgd, c.removable);
    }
    let candidate = candidates
        .iter()
        .find(|c| c.tgd.to_string() == "g(Y, Z) -> g(Y, W) & c(W).")
        .expect("the paper's tgd is among the candidates");
    let tgds = vec![candidate.tgd.clone()];

    // P2: the recursive rule without the atoms the tgd covers.
    let p2 = parse_program(
        "g(X, Z) :- a(X, Z), c(Z).
         g(X, Z) :- a(X, Y), g(Y, Z).",
    )
    .unwrap();
    println!("\nP2 (candidate deletion applied):\n{p2}");

    // Step 2 — condition (1): SAT(T) ∩ M(P1) ⊆ M(P2), by the [P1, T] chase.
    let c1 = models_condition(&p1, &p2, &tgds, 10_000);
    println!("condition (1)  SAT(T) ∩ M(P1) ⊆ M(P2): {c1:?}");
    assert_eq!(c1, Proof::Proved);

    // Step 3 — condition (2): P1 preserves T (Fig. 3).
    let c2 = preserves_nonrecursively(&p1, &tgds, 10_000);
    println!("condition (2)  P1 preserves T non-recursively: {c2:?}");
    assert_eq!(c2, Proof::Proved);

    // Step 4 — condition (3′): the preliminary DB of P1 satisfies T.
    let c3 = preliminary_db_satisfies(&p1, &tgds);
    println!("condition (3') preliminary DB of P1 satisfies T: {c3}");
    assert!(c3);

    // Together: P2 ⊑ P1; and P1 ⊑u P2 because bodies only shrank.
    println!("\n⇒ P1 ≡ P2: the atoms g(Y, W), c(W) are redundant under EQUIVALENCE.");
    println!("   (They are NOT redundant under uniform equivalence — seed g with");
    println!("    an atom whose target lacks a c-certificate and P1, P2 differ.)\n");

    // The packaged pipeline reaches the same conclusion:
    let (optimized, applied) = optimize_under_equivalence(&p1, 10_000).unwrap();
    assert_eq!(applied.len(), 1);
    assert!(
        uniformly_contains(&optimized, &p2).unwrap()
            && uniformly_contains(&p2, &optimized).unwrap()
    );

    // Demonstrate equivalence concretely, and the uniform-equivalence gap.
    let mut edb = edge_db("a", GraphKind::Chain { n: 30 });
    for i in 0..=30i64 {
        edb.insert(fact("c", [i]));
    }
    assert_eq!(
        seminaive::evaluate(&p1, &edb),
        seminaive::evaluate(&optimized, &edb)
    );
    println!("identical outputs on a 30-chain with full certificates ✓");

    let seeded = parse_database("a(0, 1). g(1, 9).").unwrap(); // 9 has no c-certificate
    let s1 = naive::evaluate(&p1, &seeded);
    let s2 = naive::evaluate(&optimized, &seeded);
    println!(
        "uniform gap on a seeded IDB: P1 derives g(0,9): {}, optimized derives g(0,9): {}",
        s1.contains(&fact("g", [0, 9])),
        s2.contains(&fact("g", [0, 9])),
    );
}
