//! Quickstart: parse a Datalog program, minimize it under uniform
//! equivalence (Sagiv 1987, Fig. 2), and evaluate it bottom-up.
//!
//! Run with: `cargo run --example quickstart`

use sagiv_datalog::prelude::*;

fn main() {
    // A transitive-closure program bloated with redundancy: a duplicated
    // atom, a widened atom (the Example 7 pattern), and a rule subsumed by
    // composing the base and doubling rules.
    let source = "
        % transitive closure of edge/2, with planted redundancy
        path(X, Z) :- edge(X, Z).
        path(X, Z) :- path(X, Y), path(Y, Z), edge(X, W).
        path(X, Z) :- edge(X, Y), edge(Y, Z).
    ";
    let program = parse_program(source).expect("parses");
    validate_positive(&program).expect("valid positive Datalog");

    println!(
        "original program ({} rules, {} body atoms):",
        program.len(),
        program.total_width()
    );
    print!("{program}");

    // Fig. 2: remove atoms redundant under uniform equivalence, then rules.
    let (minimized, removal) = minimize_program(&program).expect("minimization");
    println!(
        "\nminimized program ({} rules, {} body atoms):",
        minimized.len(),
        minimized.total_width()
    );
    print!("{minimized}");
    for (rule_idx, atom) in &removal.atoms {
        println!("  - removed redundant atom {atom} from rule {rule_idx}");
    }
    for rule in &removal.rules {
        println!("  - removed redundant rule {rule}");
    }

    // The §X–XI equivalence phase removes edge(X, W), which is redundant
    // under plain equivalence but NOT under uniform equivalence.
    let (optimized, applied) = optimize_under_equivalence(&minimized, 10_000).expect("optimize");
    println!(
        "\nafter equivalence optimization ({} body atoms):",
        optimized.total_width()
    );
    print!("{optimized}");
    for opt in &applied {
        println!(
            "  - tgd {} certified removing {}",
            opt.tgd,
            opt.removed_atoms
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    // Evaluate both on the same EDB and confirm agreement + saved work.
    let edb = edge_db("edge", GraphKind::Chain { n: 64 });
    let (out_orig, stats_orig) = seminaive::evaluate_with_stats(&program, &edb);
    let (out_opt, stats_opt) = seminaive::evaluate_with_stats(&optimized, &edb);
    assert_eq!(out_orig, out_opt, "optimization preserved the semantics");

    println!("\nevaluation on a 64-edge chain:");
    println!("  original : {stats_orig}");
    println!("  optimized: {stats_opt}");
    println!(
        "  path tuples: {} (identical outputs)",
        out_opt.relation_len(Pred::new("path"))
    );
}
