//! The paper's running example (Examples 1, 4, 6, 11, 18): transitive
//! closure in several formulations, and why *uniform* equivalence is the
//! right notion for local optimization.
//!
//! Run with: `cargo run --example transitive_closure`

use sagiv_datalog::prelude::*;

fn main() {
    // Example 1 / 4: two formulations of transitive closure.
    let doubling = transitive_closure(TcVariant::Doubling);
    let left_linear = transitive_closure(TcVariant::LeftLinear);

    println!("P1 (doubling):\n{doubling}");
    println!("P2 (left-linear):\n{left_linear}");

    // They are EQUIVALENT: same output for every EDB.
    let edb = edge_db(
        "a",
        GraphKind::ErdosRenyi {
            n: 15,
            p: 0.15,
            seed: 42,
        },
    );
    let o1 = seminaive::evaluate(&doubling, &edb);
    let o2 = seminaive::evaluate(&left_linear, &edb);
    assert_eq!(o1, o2);
    println!(
        "on a random 15-node graph both compute {} closure tuples\n",
        o1.relation_len(Pred::new("g"))
    );

    // But NOT uniformly equivalent (Example 4): seed g with a relation that
    // is not its own transitive closure.
    let seeded = parse_database("g(1, 2). g(2, 3).").unwrap();
    let s1 = naive::evaluate(&doubling, &seeded);
    let s2 = naive::evaluate(&left_linear, &seeded);
    println!("seeded with g(1,2), g(2,3) (no a-atoms):");
    println!("  P1 derives g(1,3): {}", s1.contains(&fact("g", [1, 3])));
    println!("  P2 derives g(1,3): {}", s2.contains(&fact("g", [1, 3])));
    println!(
        "  uniform containment verdicts: P2 ⊑u P1: {}, P1 ⊑u P2: {}\n",
        uniformly_contains(&doubling, &left_linear).unwrap(),
        uniformly_contains(&left_linear, &doubling).unwrap(),
    );

    // Example 11/18: the guarded doubling variant carries a redundant guard
    // a(Y, W) — redundant under equivalence, NOT under uniform equivalence.
    let guarded = transitive_closure(TcVariant::GuardedDoubling);
    println!("P1 guarded:\n{guarded}");
    let (min, removal) = minimize_program(&guarded).unwrap();
    println!(
        "Fig. 2 (uniform equivalence) removes {} parts — the guard is safe there",
        removal.len()
    );
    assert_eq!(min, guarded);

    let (optimized, applied) = optimize_under_equivalence(&guarded, 10_000).unwrap();
    println!(
        "§X–XI equivalence optimization removes it via the tgd {}:",
        applied[0].tgd
    );
    print!("{optimized}");

    // Measure the benefit at scale: the doubling program over growing
    // chains, guarded vs optimized.
    println!("\njoin work saved (semi-naive, chain EDBs):");
    println!(
        "{:>8} {:>12} {:>12} {:>8}",
        "n", "probes(P1)", "probes(opt)", "saved"
    );
    for n in [16usize, 32, 64, 128] {
        let edb = edge_db("a", GraphKind::Chain { n });
        let (out_g, stats_g) = seminaive::evaluate_with_stats(&guarded, &edb);
        let (out_o, stats_o) = seminaive::evaluate_with_stats(&optimized, &edb);
        assert_eq!(out_g, out_o);
        let saved = 100.0 * (1.0 - stats_o.probes as f64 / stats_g.probes as f64);
        println!(
            "{n:>8} {:>12} {:>12} {saved:>7.1}%",
            stats_g.probes, stats_o.probes
        );
    }
}
