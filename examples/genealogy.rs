//! A genealogy knowledge base: ancestors, common ancestors, and
//! same-generation cousins over named constants — the deductive-database
//! workload the paper's introduction situates itself in, with a magic-sets
//! query on top.
//!
//! Run with: `cargo run --example genealogy`

use sagiv_datalog::prelude::*;

fn main() {
    // Rules as a deductive-database designer might first write them — with
    // organic redundancy: a duplicated base rule written two ways, and a
    // grandparent rule subsumed by ancestor recursion.
    let program = parse_program(
        "
        % ancestry
        anc(X, Y) :- parent(X, Y).
        anc(X, Y) :- parent(X, Y), person(X).     % redundant variant of the base rule
        anc(X, Z) :- parent(X, Y), anc(Y, Z).
        anc(X, Z) :- parent(X, Y), parent(Y, Z).  % subsumed: two steps of the above

        % same generation (cousins included)
        sg(X, Y) :- sibling(X, Y).
        sg(X, Y) :- parent(P, X), parent(Q, Y), sg(P, Q).

        % common ancestors
        common(A, X, Y) :- anc(A, X), anc(A, Y).
        ",
    )
    .unwrap();
    validate_positive(&program).unwrap();

    println!(
        "original program: {} rules, {} body atoms",
        program.len(),
        program.total_width()
    );

    let (minimized, removal) = minimize_program(&program).unwrap();
    println!(
        "minimized:        {} rules, {} body atoms",
        minimized.len(),
        minimized.total_width()
    );
    for (idx, atom) in &removal.atoms {
        println!("  - atom {atom} dropped from rule {idx}");
    }
    for rule in &removal.rules {
        println!("  - rule dropped: {rule}");
    }

    // A concrete family tree.
    let edb = parse_database(
        "
        person(alice). person(bob). person(carol). person(dan).
        person(erin). person(frank). person(gina). person(hank).
        parent(alice, carol). parent(bob, carol).
        parent(alice, dan).   parent(bob, dan).
        parent(carol, erin).  parent(carol, frank).
        parent(dan, gina).    parent(dan, hank).
        sibling(carol, dan). sibling(dan, carol).
        sibling(erin, frank). sibling(frank, erin).
        sibling(gina, hank). sibling(hank, gina).
        ",
    )
    .unwrap();

    let (full, stats) = seminaive::evaluate_with_stats(&minimized, &edb);
    println!("\nevaluation: {stats}");
    println!("ancestor tuples: {}", full.relation_len(Pred::new("anc")));
    println!(
        "same-generation tuples: {}",
        full.relation_len(Pred::new("sg"))
    );

    // Erin and Gina are same-generation cousins through carol/dan.
    let erin_gina = GroundAtom::new("sg", vec![Const::from("erin"), Const::from("gina")]);
    println!("sg(erin, gina): {}", full.contains(&erin_gina));

    // Magic sets: "who are the ancestors of gina?" touches only gina's
    // lineage, not the whole closure.
    let query = parse_atom("anc(X, gina)").unwrap();
    let (answers, magic_stats) = magic::answer_with_stats(&minimized, &edb, &query);
    println!("\nmagic-sets query anc(X, gina):");
    for a in answers.iter() {
        println!("  {a}");
    }
    println!(
        "magic evaluation derived {} atoms vs {} for the full fixpoint",
        magic_stats.derivations, stats.derivations
    );
    assert!(magic_stats.derivations < stats.derivations);
}
