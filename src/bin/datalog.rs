//! `datalog` — command-line driver for the sagiv-datalog library.
//!
//! ```text
//! datalog check    <program.dl>                       validate a program
//! datalog lint     <program.dl> [--format text|json]  structural + semantic lints
//!                  [--deny <code>]... [--fuel N]
//! datalog analyze  <program.dl>                       predicates, recursion, strata
//! datalog minimize <program.dl>                       Fig. 2 minimization (≡u)
//! datalog optimize <program.dl> [--fuel N]            Fig. 2 + §X–XI equivalence phase
//! datalog eval     <program.dl> --edb <facts.dl>      bottom-up evaluation
//!                  [--engine naive|seminaive|scc|stratified] [--stats]
//! datalog run      <unit.dl> [--stats]                evaluate rules + facts [+ tgds] in one file
//! datalog repl     [<program.dl>]                     interactive session
//! datalog query    '<atom>'... <program.dl> --edb <facts.dl>  top-down point queries
//!                  [--strategy magic|qsq] [--stats]          (shared plan + answer cache)
//! datalog explain  '<atom>' <program.dl> --edb <facts.dl>   provenance proof tree
//! datalog contains <p1.dl> <p2.dl>                    uniform containment, both ways
//! datalog equiv    <p1.dl> <p2.dl> [--fuel N] [--samples N] equivalence analysis (§X–§XI)
//! datalog chase    <program.dl> --tgds <tgds.dl> --db <facts.dl> [--fuel N]
//! datalog serve    [--addr H:P] [--threads N]          materialized-view daemon (JSON protocol)
//!                  [--shards N] [--max-bytes N] [--timeout-ms N] [--max-conns N]
//! datalog client   <addr> [request-json]...            send protocol requests (stdin if none)
//! datalog fuzz     [--seed N] [--cases N] [--budget-ms N]   differential oracle fuzzing
//!                  [--oracle all|engines|optimization|incremental|query-cache|concurrent-service|metamorphic]
//!                  [--format text|json] [--repro-dir DIR] [--smoke]
//! ```
//!
//! Exit codes: 0 success, 1 user error (bad args, parse/validation
//! failures), 2 property does not hold (e.g. `contains` finds none; `lint`
//! emits an error-severity diagnostic).

use sagiv_datalog::optimizer::{minimize_stratified, ChaseTermination};
use sagiv_datalog::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        print_usage();
        return Ok(ExitCode::from(1));
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "check" => cmd_check(rest),
        "lint" => cmd_lint(rest),
        "analyze" => cmd_analyze(rest),
        "minimize" => cmd_minimize(rest),
        "optimize" => cmd_optimize(rest),
        "eval" => cmd_eval(rest),
        "run" => cmd_run(rest),
        "repl" => cmd_repl(rest),
        "query" => cmd_query(rest),
        "explain" => cmd_explain(rest),
        "contains" => cmd_contains(rest),
        "equiv" => cmd_equiv(rest),
        "chase" => cmd_chase(rest),
        "serve" => cmd_serve(rest),
        "client" => cmd_client(rest),
        "fuzz" => cmd_fuzz(rest),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`; run `datalog help`")),
    }
}

fn print_usage() {
    eprintln!(
        "datalog — Sagiv 1987 Datalog optimizer & engine

usage:
  datalog check    <program.dl>
  datalog lint     <program.dl> [--format text|json] [--deny <code>]... [--fuel N]
  datalog analyze  <program.dl>
  datalog minimize <program.dl>
  datalog optimize <program.dl> [--fuel N]
  datalog eval     <program.dl> --edb <facts.dl> [--engine naive|seminaive|scc|stratified] [--stats]
  datalog run      <unit.dl>   (rules + facts [+ tgds] in one file)
  datalog repl     [<program.dl>]   interactive session
  datalog query    '<atom>'... <program.dl> --edb <facts.dl> [--strategy magic|qsq] [--stats]
  datalog explain  '<atom>' <program.dl> --edb <facts.dl>
  datalog contains <p1.dl> <p2.dl>
  datalog equiv    <p1.dl> <p2.dl> [--fuel N] [--samples N]
  datalog chase    <program.dl> --tgds <tgds.dl> --db <facts.dl> [--fuel N]
  datalog serve    [--addr HOST:PORT] [--threads N] [--shards N] [--max-bytes N]
                   [--timeout-ms N] [--max-conns N]
  datalog client   <addr> [request-json]...   (reads stdin when no requests given)
  datalog fuzz     [--seed N] [--cases N] [--budget-ms N] [--oracle FAMILY]
                   [--format text|json] [--repro-dir DIR] [--smoke]"
    );
}

/// Parse `--flag value` options out of an argument list; returns the
/// positional arguments and a lookup.
fn split_flags(args: &[String]) -> Result<(Vec<&str>, Flags<'_>), String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if let Some(name) = a.strip_prefix("--") {
            // Boolean flags take no value.
            if name == "stats" || name == "smoke" {
                flags.push((name, ""));
                i += 1;
            } else {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--{name} needs a value"))?;
                flags.push((name, value.as_str()));
                i += 2;
            }
        } else {
            positional.push(a);
            i += 1;
        }
    }
    Ok((positional, Flags(flags)))
}

struct Flags<'a>(Vec<(&'a str, &'a str)>);

impl<'a> Flags<'a> {
    fn get(&self, name: &str) -> Option<&'a str> {
        self.0.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
    }

    fn has(&self, name: &str) -> bool {
        self.0.iter().any(|(n, _)| *n == name)
    }

    /// All values of a repeatable flag, e.g. `--deny L201 --deny L121`.
    fn get_all(&self, name: &str) -> impl Iterator<Item = &'a str> + '_ {
        let name = name.to_string();
        self.0
            .iter()
            .filter(move |(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    fn fuel(&self) -> Result<u64, String> {
        match self.get("fuel") {
            None => Ok(10_000),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--fuel: `{v}` is not a number")),
        }
    }
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn load_program(path: &str) -> Result<Program, String> {
    let src = read_file(path)?;
    parse_program(&src).map_err(|e| format!("{path}: {e}"))
}

fn load_database(path: &str) -> Result<Database, String> {
    let src = read_file(path)?;
    parse_database(&src).map_err(|e| format!("{path}: {e}"))
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let (pos, _) = split_flags(args)?;
    let [path] = pos.as_slice() else {
        return Err("usage: datalog check <program.dl>".into());
    };
    let src = read_file(path)?;
    let unit = parse_unit(&src).map_err(|e| format!("{path}: {e}"))?;
    let mut failed = false;
    if let Err(errors) = validate(&unit.program) {
        for e in errors {
            eprintln!("{path}: {e}");
        }
        failed = true;
    }
    if let Err(errors) = unit.check_schemas() {
        for e in errors {
            eprintln!("{path}: {e}");
        }
        failed = true;
    }
    if failed {
        Ok(ExitCode::from(2))
    } else {
        println!(
            "{path}: ok ({} rules, {} facts, {} tgds, {} declarations)",
            unit.program.len(),
            unit.facts.len(),
            unit.tgds.len(),
            unit.schemas.len()
        );
        Ok(ExitCode::SUCCESS)
    }
}

fn cmd_lint(args: &[String]) -> Result<ExitCode, String> {
    use sagiv_datalog::analysis::{analyze_unit, LintConfig, Severity};

    let (pos, flags) = split_flags(args)?;
    let [path] = pos.as_slice() else {
        return Err(
            "usage: datalog lint <program.dl> [--format text|json] [--deny <code>]... [--fuel N]"
                .into(),
        );
    };
    let src = read_file(path)?;
    let unit = parse_unit(&src).map_err(|e| format!("{path}: {e}"))?;
    let mut config = LintConfig::default().with_fuel(flags.fuel()?);
    for code in flags.get_all("deny") {
        config = config.deny(code);
    }
    for code in flags.get_all("allow") {
        config = config.disable(code);
    }
    let report = analyze_unit(&unit, &config);
    match flags.get("format").unwrap_or("text") {
        "json" => println!("{}", report.to_json().to_pretty()),
        "text" => {
            for d in &report.diagnostics {
                println!("{path}: {d}");
            }
            let mut summary = format!(
                "{} error(s), {} warning(s), {} note(s)",
                report.count(Severity::Error),
                report.count(Severity::Warning),
                report.count(Severity::Note)
            );
            if report.skipped_semantic_checks > 0 {
                summary.push_str(&format!(
                    "; {} semantic check(s) skipped (raise --fuel)",
                    report.skipped_semantic_checks
                ));
            }
            eprintln!("% {summary}");
        }
        other => return Err(format!("unknown format `{other}` (text|json)")),
    }
    Ok(if report.max_severity() == Some(Severity::Error) {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    })
}

fn cmd_analyze(args: &[String]) -> Result<ExitCode, String> {
    let (pos, _) = split_flags(args)?;
    let [path] = pos.as_slice() else {
        return Err("usage: datalog analyze <program.dl>".into());
    };
    let program = load_program(path)?;
    let graph = DepGraph::new(&program);
    let idb = program.intentional();
    let edb = program.extensional();
    println!("rules:       {}", program.len());
    println!("body atoms:  {}", program.total_width());
    println!(
        "intentional: {}",
        idb.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "extensional: {}",
        edb.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("recursive:   {}", graph.is_recursive());
    println!(
        "linear:      {}",
        datalog_ast::depgraph::is_linear(&program)
    );
    match graph.stratify() {
        Some(strata) => {
            let max = strata.values().copied().max().unwrap_or(0);
            println!("strata:      {}", max + 1);
            for (p, s) in &strata {
                println!("  {p}: stratum {s}");
            }
        }
        None => println!("strata:      NOT STRATIFIABLE"),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_minimize(args: &[String]) -> Result<ExitCode, String> {
    let (pos, _) = split_flags(args)?;
    let [path] = pos.as_slice() else {
        return Err("usage: datalog minimize <program.dl>".into());
    };
    let program = load_program(path)?;
    let (minimized, removal) = if program.is_positive() {
        minimize_program(&program).map_err(|e| e.to_string())?
    } else {
        minimize_stratified(&program).map_err(|e| e.to_string())?
    };
    print!("{minimized}");
    for (idx, atom) in &removal.atoms {
        eprintln!("% removed atom {atom} (rule {idx})");
    }
    for rule in &removal.rules {
        eprintln!("% removed rule {rule}");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_optimize(args: &[String]) -> Result<ExitCode, String> {
    let (pos, flags) = split_flags(args)?;
    let [path] = pos.as_slice() else {
        return Err("usage: datalog optimize <program.dl> [--fuel N]".into());
    };
    let program = load_program(path)?;
    let (optimized, removal, applied) =
        optimize(&program, flags.fuel()?).map_err(|e| e.to_string())?;
    print!("{optimized}");
    for (idx, atom) in &removal.atoms {
        eprintln!("% [≡u] removed atom {atom} (rule {idx})");
    }
    for rule in &removal.rules {
        eprintln!("% [≡u] removed rule {rule}");
    }
    for opt in &applied {
        eprintln!(
            "% [≡ via tgd {}] removed {}",
            opt.tgd,
            opt.removed_atoms
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_eval(args: &[String]) -> Result<ExitCode, String> {
    let (pos, flags) = split_flags(args)?;
    let [path] = pos.as_slice() else {
        return Err(
            "usage: datalog eval <program.dl> --edb <facts.dl> [--engine E] [--stats]".into(),
        );
    };
    let program = load_program(path)?;
    let edb = load_database(flags.get("edb").ok_or("--edb <facts.dl> is required")?)?;
    let engine = flags.get("engine").unwrap_or("seminaive");
    let (out, stats) = match engine {
        "naive" => naive::evaluate_with_stats(&program, &edb),
        "seminaive" => seminaive::evaluate_with_stats(&program, &edb),
        "scc" => scc_eval::evaluate_with_stats(&program, &edb),
        "stratified" => {
            stratified::evaluate_with_stats(&program, &edb).map_err(|e| e.to_string())?
        }
        other => return Err(format!("unknown engine `{other}`")),
    };
    for atom in out.iter() {
        println!("{atom}.");
    }
    if flags.has("stats") {
        eprintln!("% {stats}");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let (pos, flags) = split_flags(args)?;
    let [path] = pos.as_slice() else {
        return Err("usage: datalog run <unit.dl> [--stats]".into());
    };
    let src = read_file(path)?;
    let unit = parse_unit(&src).map_err(|e| format!("{path}: {e}"))?;
    if let Err(errors) = unit.check_schemas() {
        let msgs: Vec<String> = errors.iter().map(ToString::to_string).collect();
        return Err(msgs.join("; "));
    }
    let input = Database::from_atoms(unit.facts.iter().cloned());
    let (out, stats) = if unit.tgds.is_empty() {
        if unit.program.is_positive() {
            seminaive::evaluate_with_stats(&unit.program, &input)
        } else {
            stratified::evaluate_with_stats(&unit.program, &input).map_err(|e| e.to_string())?
        }
    } else {
        // With tgds: run the combined [P, T] chase (fuel-bounded).
        let fuel = sagiv_datalog::optimizer::fuel_for(&unit.tgds, flags.fuel()?);
        let result = chase(&unit.program, &unit.tgds, &input, fuel, None);
        eprintln!("% chase status: {:?}", result.status);
        (result.db, Stats::default())
    };
    for atom in out.iter() {
        println!("{atom}.");
    }
    if flags.has("stats") {
        eprintln!("% {stats}");
    }
    Ok(ExitCode::SUCCESS)
}

/// Answer one or more point queries top-down. All queries of one
/// invocation share a [`QueryState`]: the magic/QSQ plan for a binding
/// pattern is built once, and a query covered by an earlier answer set is
/// served from the cache by §V/§VI subsumption instead of re-evaluating
/// (visible as `[hit]`/`[subsumed]` in the `--stats` lines).
///
/// [`QueryState`]: sagiv_datalog::service::QueryState
fn cmd_query(args: &[String]) -> Result<ExitCode, String> {
    use datalog_engine::query::Strategy;
    use sagiv_datalog::service::QueryState;

    let (pos, flags) = split_flags(args)?;
    let Some((path, query_srcs)) = pos.split_last().filter(|(_, qs)| !qs.is_empty()) else {
        return Err(
            "usage: datalog query '<atom>'... <program.dl> --edb <facts.dl> \
             [--strategy magic|qsq] [--stats]"
                .into(),
        );
    };
    let program = load_program(path)?;
    let edb = load_database(flags.get("edb").ok_or("--edb <facts.dl> is required")?)?;
    let strategy_name = flags.get("strategy").unwrap_or("magic");
    let strategy = Strategy::parse(strategy_name)
        .ok_or_else(|| format!("unknown strategy `{strategy_name}` (magic|qsq)"))?;
    let state = QueryState::new(&program);
    let mut any_answers = false;
    for query_src in query_srcs {
        let query = parse_atom(query_src).map_err(|e| e.to_string())?;
        // The CLI evaluates one fixed EDB: every query runs at version 0.
        let (answers, status, stats) = state.answer_at(&edb, 0, &query, strategy);
        if query_srcs.len() > 1 {
            println!("% ?- {query}.");
        }
        for atom in answers.iter() {
            println!("{atom}.");
        }
        any_answers |= !answers.is_empty();
        if flags.has("stats") {
            eprintln!("% [{}] {stats}", status.name());
        }
    }
    Ok(if any_answers {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

fn cmd_explain(args: &[String]) -> Result<ExitCode, String> {
    let (pos, flags) = split_flags(args)?;
    let [atom_src, path] = pos.as_slice() else {
        return Err("usage: datalog explain '<atom>' <program.dl> --edb <facts.dl>".into());
    };
    let atom = parse_atom(atom_src).map_err(|e| e.to_string())?;
    let goal = atom
        .to_ground()
        .ok_or("the atom to explain must be ground")?;
    let program = load_program(path)?;
    let edb = load_database(flags.get("edb").ok_or("--edb <facts.dl> is required")?)?;
    let traced = sagiv_datalog::engine::provenance::evaluate_traced(&program, &edb);
    match traced.explain(&goal) {
        Some(proof) => {
            print!("{proof}");
            Ok(ExitCode::SUCCESS)
        }
        None => {
            eprintln!("{goal} is not derivable");
            Ok(ExitCode::from(2))
        }
    }
}

fn cmd_contains(args: &[String]) -> Result<ExitCode, String> {
    let (pos, _) = split_flags(args)?;
    let [p1_path, p2_path] = pos.as_slice() else {
        return Err("usage: datalog contains <p1.dl> <p2.dl>".into());
    };
    let p1 = load_program(p1_path)?;
    let p2 = load_program(p2_path)?;
    let fwd = uniformly_contains(&p1, &p2).map_err(|e| e.to_string())?;
    let bwd = uniformly_contains(&p2, &p1).map_err(|e| e.to_string())?;
    println!("P2 ⊑u P1 (P1 uniformly contains P2): {fwd}");
    println!("P1 ⊑u P2 (P2 uniformly contains P1): {bwd}");
    println!("uniformly equivalent: {}", fwd && bwd);
    Ok(if fwd && bwd {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

fn cmd_equiv(args: &[String]) -> Result<ExitCode, String> {
    use sagiv_datalog::optimizer::{analyze_equivalence, EquivVerdict};
    let (pos, flags) = split_flags(args)?;
    let [p1_path, p2_path] = pos.as_slice() else {
        return Err("usage: datalog equiv <p1.dl> <p2.dl> [--fuel N] [--samples N]".into());
    };
    let p1 = load_program(p1_path)?;
    let p2 = load_program(p2_path)?;
    let samples = match flags.get("samples") {
        None => 200,
        Some(v) => v
            .parse()
            .map_err(|_| format!("--samples: `{v}` is not a number"))?,
    };
    let verdict =
        analyze_equivalence(&p1, &p2, flags.fuel()?, samples).map_err(|e| e.to_string())?;
    match verdict {
        EquivVerdict::UniformlyEquivalent => {
            println!("EQUIVALENT (uniformly — decided, paper §VI)");
            Ok(ExitCode::SUCCESS)
        }
        EquivVerdict::CertifiedEquivalent => {
            println!("EQUIVALENT (certified via the §X–§XI tgd pipeline)");
            Ok(ExitCode::SUCCESS)
        }
        EquivVerdict::NotEquivalent(sep) => {
            println!("NOT EQUIVALENT");
            println!("separating EDB: {}", sep.edb);
            println!(
                "witness: {} derived by {} only",
                sep.witness,
                if sep.in_first { "P1" } else { "P2" }
            );
            Ok(ExitCode::from(2))
        }
        EquivVerdict::Unknown => {
            println!("UNKNOWN (neither proved nor refuted within budget — the problem is undecidable in general)");
            Ok(ExitCode::from(3))
        }
    }
}

fn cmd_chase(args: &[String]) -> Result<ExitCode, String> {
    let (pos, flags) = split_flags(args)?;
    let [path] = pos.as_slice() else {
        return Err(
            "usage: datalog chase <program.dl> --tgds <tgds.dl> --db <facts.dl> [--fuel N]".into(),
        );
    };
    let program = load_program(path)?;
    let tgds_src = read_file(flags.get("tgds").ok_or("--tgds <tgds.dl> is required")?)?;
    let tgds = parse_tgds(&tgds_src).map_err(|e| e.to_string())?;
    let db = load_database(flags.get("db").ok_or("--db <facts.dl> is required")?)?;
    let termination = sagiv_datalog::optimizer::analyze_termination(&tgds);
    eprintln!(
        "% termination: {}",
        match termination {
            ChaseTermination::AllFull => "guaranteed (all tgds full)",
            ChaseTermination::WeaklyAcyclic => "guaranteed (weakly acyclic)",
            ChaseTermination::Unknown => "not guaranteed (fuel bound applies)",
        }
    );
    let fuel = sagiv_datalog::optimizer::fuel_for(&tgds, flags.fuel()?);
    let result = chase(&program, &tgds, &db, fuel, None);
    for atom in result.db.iter() {
        println!("{atom}.");
    }
    eprintln!(
        "% status: {:?}, atoms added: {}",
        result.status, result.added
    );
    Ok(match result.status {
        ChaseStatus::Saturated | ChaseStatus::GoalReached => ExitCode::SUCCESS,
        ChaseStatus::OutOfFuel => ExitCode::from(2),
    })
}

/// Run the materialized-view daemon (see `docs/SERVICE.md` for the wire
/// protocol). Prints `listening on HOST:PORT` on stdout once ready — with
/// `--addr 127.0.0.1:0` that line is how callers learn the ephemeral port.
fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    use sagiv_datalog::service::{Server, ServerConfig};
    use std::io::Write as _;

    let (pos, flags) = split_flags(args)?;
    if !pos.is_empty() {
        return Err(
            "usage: datalog serve [--addr HOST:PORT] [--threads N] [--shards N] [--max-bytes N] \
             [--timeout-ms N] [--max-conns N]"
                .into(),
        );
    }
    let addr = flags.get("addr").unwrap_or("127.0.0.1:4713");
    let mut config = ServerConfig::default();
    if let Some(v) = flags.get("threads") {
        config.threads = v
            .parse()
            .map_err(|_| format!("--threads: `{v}` is not a number"))?;
    }
    if let Some(v) = flags.get("max-bytes") {
        config.max_request_bytes = v
            .parse()
            .map_err(|_| format!("--max-bytes: `{v}` is not a number"))?;
    }
    if let Some(v) = flags.get("timeout-ms") {
        let ms: u64 = v
            .parse()
            .map_err(|_| format!("--timeout-ms: `{v}` is not a number"))?;
        config.read_timeout = std::time::Duration::from_millis(ms);
    }
    if let Some(v) = flags.get("shards") {
        config.shards = v
            .parse()
            .map_err(|_| format!("--shards: `{v}` is not a number"))?;
    }
    if let Some(v) = flags.get("max-conns") {
        config.max_connections = v
            .parse()
            .map_err(|_| format!("--max-conns: `{v}` is not a number"))?;
    }
    let server = Server::bind(addr, config).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let local = server.local_addr().map_err(|e| e.to_string())?;
    println!("listening on {local}");
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    server.run().map_err(|e| e.to_string())?;
    eprintln!("% shutdown complete");
    Ok(ExitCode::SUCCESS)
}

/// Send protocol requests to a running daemon, one JSON object per line
/// (from the command line, or from stdin when none are given). Responses
/// print to stdout; exit code 2 if any response carried `"ok": false`.
fn cmd_client(args: &[String]) -> Result<ExitCode, String> {
    use sagiv_datalog::service::Client;
    use std::io::BufRead as _;

    let (pos, _) = split_flags(args)?;
    let Some((addr, requests)) = pos.split_first() else {
        return Err("usage: datalog client <addr> [request-json]...".into());
    };
    let mut client = Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let mut any_failed = false;
    let mut send = |client: &mut Client, line: &str| -> Result<(), String> {
        let line = line.trim();
        if line.is_empty() {
            return Ok(());
        }
        let response = client.request_line(line).map_err(|e| e.to_string())?;
        println!("{response}");
        if let Ok(v) = datalog_json::Value::parse(&response) {
            if v.get("ok").and_then(datalog_json::Value::as_bool) == Some(false) {
                any_failed = true;
            }
        }
        Ok(())
    };
    if requests.is_empty() {
        for line in std::io::stdin().lock().lines() {
            let line = line.map_err(|e| e.to_string())?;
            send(&mut client, &line)?;
        }
    } else {
        for request in requests {
            send(&mut client, request)?;
        }
    }
    Ok(if any_failed {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    })
}

/// Differential oracle fuzzing (see `docs/FUZZING.md`). Exit code 0 when
/// every case agrees across the engine matrix / optimizer / incremental
/// oracles, 2 when any divergence was found. Divergences are reduced to
/// minimal repros; `--repro-dir` writes them as `.repro` fixtures.
fn cmd_fuzz(args: &[String]) -> Result<ExitCode, String> {
    use sagiv_datalog::oracle::{fuzz, Family, FuzzConfig};

    let (pos, flags) = split_flags(args)?;
    if !pos.is_empty() {
        return Err(
            "usage: datalog fuzz [--seed N] [--cases N] [--budget-ms N] [--oracle FAMILY] \
             [--format text|json] [--repro-dir DIR] [--smoke]"
                .into(),
        );
    }
    let mut config = if flags.has("smoke") {
        FuzzConfig::smoke()
    } else {
        FuzzConfig::default()
    };
    let parse_num = |name: &str, v: &str| -> Result<u64, String> {
        v.parse()
            .map_err(|_| format!("--{name}: `{v}` is not a number"))
    };
    if let Some(v) = flags.get("seed") {
        config.seed = parse_num("seed", v)?;
    }
    if let Some(v) = flags.get("cases") {
        config.cases = parse_num("cases", v)?;
    }
    if let Some(v) = flags.get("budget-ms") {
        config.budget_ms = Some(parse_num("budget-ms", v)?);
    }
    if let Some(v) = flags.get("oracle") {
        config.families = match v {
            "all" => Family::ALL.to_vec(),
            name => vec![Family::parse(name).ok_or_else(|| {
                format!(
                    "--oracle: `{name}` is not all|engines|optimization|incremental|query-cache|concurrent-service|metamorphic"
                )
            })?],
        };
    }

    let mut report = fuzz(&config);

    if let Some(dir) = flags.get("repro-dir") {
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
        for finding in &mut report.findings {
            let path = format!("{dir}/fuzz-{}-{}.repro", finding.family, finding.seed);
            std::fs::write(&path, &finding.fixture)
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            finding.written_to = Some(path);
        }
    }

    match flags.get("format").unwrap_or("text") {
        "json" => println!("{}", report.to_json().to_pretty()),
        "text" => println!("{report}"),
        other => return Err(format!("unknown format `{other}` (text|json)")),
    }
    Ok(if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

/// Interactive session. Commands:
///
/// * `p(X) :- q(X).` — add a rule (rebuilds the materialisation);
/// * `p(1, 2).` — assert a fact (incremental propagation);
/// * `?- g(1, X).` — query the current fixpoint (pattern matching);
/// * `:load <file>` — add the rules/facts of a file;
/// * `:program` — print the current rules;
/// * `:minimize` — minimize the current rules (Fig. 2);
/// * `:db` — print the current fixpoint;
/// * `:explain g(1, 2).` — print a derivation;
/// * `:quit` — leave.
fn cmd_repl(args: &[String]) -> Result<ExitCode, String> {
    use datalog_engine::Materialized;
    use std::io::BufRead;

    let (pos, _) = split_flags(args)?;
    let mut program = match pos.as_slice() {
        [] => Program::empty(),
        [path] => load_program(path)?,
        _ => return Err("usage: datalog repl [<program.dl>]".into()),
    };
    // `base` holds only asserted facts; the materialisation holds the
    // fixpoint. Provenance (:explain) runs from the base so input vs.
    // derived is reported truthfully.
    let mut base = Database::new();
    let mut m = Materialized::new(program.clone(), &base);

    let stdin = std::io::stdin();
    let interactive = is_tty();
    if interactive {
        eprintln!("datalog repl — :help for commands");
    }
    let mut lines = stdin.lock().lines();
    loop {
        if interactive {
            eprint!("?- ");
        }
        let Some(line) = lines.next() else { break };
        let line = line.map_err(|e| e.to_string())?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        let result = repl_step(line, &mut program, &mut base, &mut m);
        match result {
            Ok(ReplOutcome::Continue) => {}
            Ok(ReplOutcome::Quit) => break,
            Err(msg) => eprintln!("error: {msg}"),
        }
    }
    Ok(ExitCode::SUCCESS)
}

enum ReplOutcome {
    Continue,
    Quit,
}

fn is_tty() -> bool {
    // Keep it simple and dependency-free: scripted runs set no TERM-based
    // expectations; suppress prompts unless explicitly interactive.
    std::env::var_os("DATALOG_REPL_PROMPT").is_some()
}

fn repl_step(
    line: &str,
    program: &mut Program,
    base: &mut Database,
    m: &mut datalog_engine::Materialized,
) -> Result<ReplOutcome, String> {
    use datalog_engine::Materialized;

    if let Some(rest) = line.strip_prefix("?-") {
        // Query: match a (possibly non-ground) atom against the fixpoint.
        let atom_src = rest.trim().trim_end_matches('.');
        let pattern = parse_atom(atom_src).map_err(|e| e.to_string())?;
        let mut count = 0usize;
        for tuple in m.database().relation(pattern.pred) {
            let g = GroundAtom {
                pred: pattern.pred,
                tuple: tuple.into(),
            };
            if datalog_ast::match_atom(&pattern, &g).is_some() {
                println!("{g}.");
                count += 1;
            }
        }
        println!("% {count} answer(s)");
        return Ok(ReplOutcome::Continue);
    }
    if let Some(rest) = line.strip_prefix(":explain") {
        let atom_src = rest.trim().trim_end_matches('.');
        let goal = parse_atom(atom_src)
            .map_err(|e| e.to_string())?
            .to_ground()
            .ok_or("the atom to explain must be ground")?;
        let traced = sagiv_datalog::engine::provenance::evaluate_traced(program, base);
        match traced.explain(&goal) {
            Some(proof) => print!("{proof}"),
            None => println!("% {goal} is not derivable"),
        }
        return Ok(ReplOutcome::Continue);
    }
    if let Some(rest) = line.strip_prefix(":load") {
        let src = read_file(rest.trim())?;
        let unit = parse_unit(&src).map_err(|e| e.to_string())?;
        program.rules.extend(unit.program.rules);
        base.extend(unit.facts);
        *m = Materialized::new(program.clone(), base);
        println!(
            "% loaded ({} rules, {} atoms)",
            program.len(),
            m.database().len()
        );
        return Ok(ReplOutcome::Continue);
    }
    match line {
        ":quit" | ":q" | ":exit" => return Ok(ReplOutcome::Quit),
        ":help" => {
            println!(
                "% rule.         add a rule\n\
                 % fact.         assert a fact (incremental)\n\
                 % ?- atom.      query\n\
                 % :load FILE    add rules/facts from a file\n\
                 % :program      show rules\n\
                 % :minimize     Fig. 2 minimization\n\
                 % :db           show the fixpoint\n\
                 % :explain A.   derivation tree for a ground atom\n\
                 % :quit"
            );
            return Ok(ReplOutcome::Continue);
        }
        ":program" => {
            print!("{program}");
            return Ok(ReplOutcome::Continue);
        }
        ":db" => {
            for a in m.database().iter() {
                println!("{a}.");
            }
            return Ok(ReplOutcome::Continue);
        }
        ":minimize" => {
            let (min, removal) = minimize_program(program).map_err(|e| e.to_string())?;
            *program = min;
            *m = datalog_engine::Materialized::new(program.clone(), base);
            println!("% removed {} part(s)", removal.len());
            return Ok(ReplOutcome::Continue);
        }
        _ => {}
    }
    // Otherwise: a rule or a fact.
    let rule = parse_rule(line).map_err(|e| e.to_string())?;
    if rule.body.is_empty() {
        if let Some(g) = rule.head.to_ground() {
            base.insert(g.clone());
            let added = m.insert([g]);
            println!("% +{added} atom(s)");
            return Ok(ReplOutcome::Continue);
        }
    }
    if let Err(errors) = validate_positive(&Program::new(vec![rule.clone()])) {
        return Err(errors
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("; "));
    }
    program.rules.push(rule);
    *m = datalog_engine::Materialized::new(program.clone(), base);
    println!("% rule added ({} rules)", program.len());
    Ok(ReplOutcome::Continue)
}
