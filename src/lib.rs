//! # sagiv-datalog
//!
//! A production-quality Rust reproduction of Yehoshua Sagiv, *"Optimizing
//! Datalog Programs"*, PODS 1987 — the paper that introduced **uniform
//! equivalence** and showed that, unlike plain equivalence (undecidable),
//! minimizing a Datalog program under uniform equivalence is decidable and
//! practical.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`ast`] (`datalog-ast`) — programs, rules, atoms, tgds, parser,
//!   validation, dependence-graph analysis;
//! * [`engine`] (`datalog-engine`) — naive, semi-naive, magic-sets, and
//!   stratified bottom-up evaluation;
//! * [`optimizer`] (`datalog-optimizer`) — the paper's algorithms: uniform
//!   containment (§VI), Fig. 1/2 minimization (§VII), the `[P, T]` chase
//!   (§VIII), the Fig. 3 preservation test (§IX), and the §X–XI
//!   equivalence optimizer;
//! * [`generate`] (`datalog-generate`) — synthetic workloads with
//!   ground-truth redundancy;
//! * [`analysis`] (`datalog-analysis`) — structural and semantic lints
//!   with span-aware structured diagnostics (`datalog lint`);
//! * [`oracle`] (`datalog-oracle`) — the differential fuzzing subsystem
//!   behind `datalog fuzz`: engine-matrix, optimization-soundness, and
//!   incremental-consistency oracles plus a delta-debugging case reducer;
//! * [`service`] (`datalog-service`) — the concurrent materialized-view
//!   server behind `datalog serve`: optimize-on-install program registry,
//!   snapshot-isolated reads, line-delimited JSON wire protocol.
//!
//! ## Quick start
//!
//! ```
//! use sagiv_datalog::prelude::*;
//!
//! // Parse a program with a redundant atom (paper Example 7).
//! let program = parse_program(
//!     "g(X, Y, Z) :- g(X, W, Z), a(W, Y), a(W, Z), a(Z, Z), a(Z, Y).",
//! ).unwrap();
//!
//! // Minimize it under uniform equivalence (Fig. 2).
//! let (minimized, removal) = minimize_program(&program).unwrap();
//! assert_eq!(removal.atoms.len(), 1); // a(W, Y) was redundant
//!
//! // Evaluate the minimized program bottom-up.
//! let edb = parse_database("a(1, 1). g(0, 1, 1).").unwrap();
//! let out = seminaive::evaluate(&minimized, &edb);
//! assert!(out.len() >= edb.len());
//! ```

#![warn(rust_2018_idioms)]

pub use datalog_analysis as analysis;
pub use datalog_ast as ast;
pub use datalog_engine as engine;
pub use datalog_generate as generate;
pub use datalog_optimizer as optimizer;
pub use datalog_oracle as oracle;
pub use datalog_service as service;

/// The most frequently used items, in one import.
pub mod prelude {
    pub use datalog_ast::{
        atom, fact, parse_atom, parse_database, parse_program, parse_rule, parse_tgd, parse_tgds,
        parse_unit, validate, validate_positive, Atom, ColType, Const, Database, DepGraph,
        GroundAtom, Literal, Pred, Program, Rule, Schema, SchemaSet, Subst, Term, Tgd, Var,
    };
    pub use datalog_engine::{magic, naive, qsq, scc_eval, seminaive, stratified, Stats};
    pub use datalog_generate::{
        bloated_tc, edge_db, random_db, random_program, random_stratified_program,
        transitive_closure, GraphKind, RandomProgramSpec, TcVariant,
    };
    pub use datalog_optimizer::{
        analyze_equivalence, candidate_tgds, chase, cq_contained, find_separating_edb, is_minimal,
        minimize_program, minimize_rule, minimize_stratified, models_condition, optimize,
        optimize_under_equivalence, preliminary_db_satisfies, preserves_nonrecursively,
        rule_contained, satisfies_tgd, slice_for_query, uniformly_contains, uniformly_equivalent,
        ChaseStatus, EquivVerdict, Proof,
    };
}
